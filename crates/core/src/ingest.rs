//! Channel-directory fleet ingestion.
//!
//! Real EMS deployments do not ship one hand-written model file per
//! substation: they ship *convention-driven config trees* — a directory
//! per communication channel holding CSV point tables and protocol
//! mapping tables, plus a top-level channel manifest with transport
//! parameters. This module parses that shape with strict,
//! line/column-addressed validation errors and lowers it into the
//! analyzer's native [`ScadaConfig`], deterministically: re-importing
//! the same tree always yields the same model, so the canonical
//! [`model_hash`](crate::model_hash) is stable across re-imports.
//!
//! # Directory layout
//!
//! ```text
//! substation-a/
//!   channels.csv            # channel,kind,uplink,transport,bandwidth_kbps
//!   grid.csv                # element,a,b,susceptance  (bus count + lines)
//!   spec.csv                # key,value                (resiliency spec)
//!   security.csv            # a,b,profiles             (per-pair crypto)
//!   ied003/                 # one directory per IED channel
//!     telemetry.csv         # point,description
//!     mapping_telemetry.csv # point,kind,a,b           (point → measurement)
//!     signal.csv            # point,description        (optional, validated)
//!     control.csv           # point,description        (optional, validated)
//! ```
//!
//! * `channels.csv` rows declare devices in id order (row 1 = device 1).
//!   `kind` is `master|rtu|ied|router` (exactly one master). `uplink`
//!   lists space-separated names of *earlier* channels this channel
//!   links to; `transport` (`ethernet|wireless|serial|fiber`) and
//!   `bandwidth_kbps` describe those declared links.
//! * `grid.csv` holds one `bus,<count>,,` row and one
//!   `line,<from>,<to>,<susceptance>` row per transmission line, in
//!   branch order.
//! * `spec.csv` keys: `resilience_ieds`, `resilience_rtus`, `corrupted`
//!   (required), `link_failures` (default 0), `property`
//!   (`obs|secured|baddata`, default `secured`).
//! * Each IED channel directory maps every telemetry point to exactly
//!   one measurement (`flow,<a>,<b>` measured at the `a` end, or
//!   `injection,<bus>,`). Global measurement ids follow (channel order,
//!   telemetry row order). `signal.csv`/`control.csv` are validated for
//!   shape but not lowered (the analysis models telemetry delivery).
//!
//! CSV parsing is zero-dependency and strict, in the spirit of the
//! service protocol's JSON grammar: UTF-8 BOM tolerated, CRLF
//! tolerated, quoted fields with `""` escapes, and hard errors (with
//! file/line/column) on unbalanced quotes, stray characters after a
//! closing quote, or quotes inside unquoted fields.
//!
//! # Canonical form and fixed points
//!
//! [`export_files`] writes an [`ImportedConfig`] back out as a
//! canonical tree (generated channel/point names, declared links listed
//! on their higher-numbered endpoint). Import is a fixed point over it:
//! `import(export(import(t))) == import(t)`, property-tested in
//! `tests/fleet.rs`. [`from_scada`] canonicalizes an arbitrary
//! [`ScadaConfig`] into that form (reorienting links, renumbering
//! measurements into channel order) — it is how the checked-in example
//! fleet is generated. Like the textual config format, the
//! channel-directory form expresses device *kinds* but not per-device
//! crypto attributes; models that need those are out of its scope.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use powergrid::{Branch, BusId, MeasurementId, MeasurementKind, MeasurementSet, PowerSystem};
use scadasim::{
    CryptoProfile, Device, DeviceId, DeviceKind, Link, LinkMedium, ScadaConfig, Topology,
};

/// The property names a fleet config may request (`spec.csv`'s
/// `property` key), matching the service protocol's wire names.
pub const PROPERTIES: [&str; 3] = ["obs", "secured", "baddata"];

/// A strict, source-addressed ingestion error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestError {
    /// Relative path of the offending file within the config directory.
    pub file: String,
    /// 1-based line number; 0 for whole-file errors.
    pub line: usize,
    /// 1-based column number; 0 for whole-line errors.
    pub column: usize,
    /// Description of what was rejected.
    pub message: String,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}", self.file, self.message)
        } else if self.column == 0 {
            write!(f, "{}:{}: {}", self.file, self.line, self.message)
        } else {
            write!(
                f,
                "{}:{}:{}: {}",
                self.file, self.line, self.column, self.message
            )
        }
    }
}

impl std::error::Error for IngestError {}

fn err(file: &str, line: usize, column: usize, message: impl Into<String>) -> IngestError {
    IngestError {
        file: file.to_string(),
        line,
        column,
        message: message.into(),
    }
}

/// One CSV field with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvField {
    /// 1-based line the field starts on.
    pub line: usize,
    /// 1-based column the field starts at.
    pub column: usize,
    /// Decoded field value (quotes removed, `""` unescaped).
    pub value: String,
}

/// One CSV record (a non-blank line, or several lines when a quoted
/// field spans newlines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvRecord {
    /// 1-based line the record starts on.
    pub line: usize,
    /// The record's fields, left to right.
    pub fields: Vec<CsvField>,
}

/// Parses strict CSV: UTF-8 BOM and CRLF line endings are tolerated,
/// blank lines are skipped, quoted fields may contain commas, quotes
/// (escaped `""`), and newlines.
///
/// # Errors
///
/// Rejects, with file/line/column: unbalanced quotes, any character
/// between a closing quote and the next separator, quotes inside
/// unquoted fields, and bare carriage returns.
pub fn parse_csv(file: &str, text: &str) -> Result<Vec<CsvRecord>, IngestError> {
    #[derive(PartialEq, Clone, Copy)]
    enum State {
        Start,
        Unquoted,
        Quoted,
        AfterQuote,
    }
    let text = text.strip_prefix('\u{feff}').unwrap_or(text);
    let mut records = Vec::new();
    let mut fields: Vec<CsvField> = Vec::new();
    let mut value = String::new();
    let mut state = State::Start;
    let (mut line, mut col) = (1usize, 1usize);
    let mut field_pos: Option<(usize, usize)> = None;
    let mut open_pos = (1usize, 1usize);
    // True once the current record has seen any content (so `a,` keeps
    // its trailing empty field while a fully blank line is skipped).
    let mut pending = false;

    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        let here = (line, col);
        // A CRLF pair is one record terminator; a bare CR is an error
        // outside quotes.
        let terminator = if c == '\r' && state != State::Quoted {
            if chars.peek() != Some(&'\n') {
                return Err(err(file, here.0, here.1, "bare carriage return"));
            }
            chars.next();
            line += 1;
            col = 1;
            true
        } else if c == '\n' && state != State::Quoted {
            line += 1;
            col = 1;
            true
        } else {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            false
        };

        if terminator {
            match state {
                State::Quoted => unreachable!("terminators are literal inside quotes"),
                State::Start if fields.is_empty() && !pending => continue, // blank line
                State::Start | State::Unquoted | State::AfterQuote => {
                    let (fl, fc) = field_pos.unwrap_or(here);
                    fields.push(CsvField {
                        line: fl,
                        column: fc,
                        value: std::mem::take(&mut value),
                    });
                    records.push(CsvRecord {
                        line: fields[0].line,
                        fields: std::mem::take(&mut fields),
                    });
                    state = State::Start;
                    field_pos = None;
                    pending = false;
                }
            }
            continue;
        }

        match state {
            State::Start => match c {
                '"' => {
                    state = State::Quoted;
                    field_pos = Some(here);
                    open_pos = here;
                    pending = true;
                }
                ',' => {
                    let (fl, fc) = field_pos.unwrap_or(here);
                    fields.push(CsvField {
                        line: fl,
                        column: fc,
                        value: String::new(),
                    });
                    field_pos = None;
                    pending = true;
                }
                _ => {
                    state = State::Unquoted;
                    field_pos = Some(here);
                    value.push(c);
                    pending = true;
                }
            },
            State::Unquoted => match c {
                ',' => {
                    let (fl, fc) = field_pos.take().unwrap_or(here);
                    fields.push(CsvField {
                        line: fl,
                        column: fc,
                        value: std::mem::take(&mut value),
                    });
                    state = State::Start;
                }
                '"' => {
                    return Err(err(file, here.0, here.1, "quote inside unquoted field"));
                }
                _ => value.push(c),
            },
            State::Quoted => match c {
                '"' => state = State::AfterQuote,
                _ => value.push(c),
            },
            State::AfterQuote => match c {
                '"' => {
                    value.push('"');
                    state = State::Quoted;
                }
                ',' => {
                    let (fl, fc) = field_pos.take().unwrap_or(here);
                    fields.push(CsvField {
                        line: fl,
                        column: fc,
                        value: std::mem::take(&mut value),
                    });
                    state = State::Start;
                }
                _ => {
                    return Err(err(
                        file,
                        here.0,
                        here.1,
                        "unexpected character after closing quote",
                    ));
                }
            },
        }
    }

    match state {
        State::Quoted => {
            return Err(err(file, open_pos.0, open_pos.1, "unbalanced quote"));
        }
        State::Start if fields.is_empty() && !pending => {}
        State::Start | State::Unquoted | State::AfterQuote => {
            let (fl, fc) = field_pos.unwrap_or((line, col));
            fields.push(CsvField {
                line: fl,
                column: fc,
                value,
            });
            records.push(CsvRecord {
                line: fields[0].line,
                fields,
            });
        }
    }
    Ok(records)
}

/// Parses a CSV table: validates the header row and that every data
/// row has exactly the header's arity, returning the data rows.
fn table(file: &str, text: &str, header: &[&str]) -> Result<Vec<CsvRecord>, IngestError> {
    let mut records = parse_csv(file, text)?;
    if records.is_empty() {
        return Err(err(
            file,
            0,
            0,
            format!("missing header `{}`", header.join(",")),
        ));
    }
    let head = records.remove(0);
    let matches = head.fields.len() == header.len()
        && head.fields.iter().zip(header).all(|(f, h)| f.value == *h);
    if !matches {
        return Err(err(
            file,
            head.line,
            head.fields[0].column,
            format!("expected header `{}`", header.join(",")),
        ));
    }
    for row in &records {
        if row.fields.len() != header.len() {
            return Err(err(
                file,
                row.line,
                row.fields[0].column,
                format!(
                    "expected {} fields, found {}",
                    header.len(),
                    row.fields.len()
                ),
            ));
        }
    }
    Ok(records)
}

/// Strict unsigned integer: decimal digits only, no sign, no leading
/// zeros (matching the protocol's JSON number grammar).
fn parse_count(file: &str, field: &CsvField, what: &str) -> Result<usize, IngestError> {
    let v = &field.value;
    let ok =
        !v.is_empty() && v.bytes().all(|b| b.is_ascii_digit()) && (v == "0" || !v.starts_with('0'));
    if !ok {
        return Err(err(
            file,
            field.line,
            field.column,
            format!("bad {what} `{v}` (expected a decimal integer)"),
        ));
    }
    v.parse().map_err(|_| {
        err(
            file,
            field.line,
            field.column,
            format!("{what} `{v}` out of range"),
        )
    })
}

/// Strict finite float, JSON number grammar:
/// `-? (0 | [1-9][0-9]*) (.[0-9]+)? ([eE][+-]?[0-9]+)?`.
fn parse_float(file: &str, field: &CsvField, what: &str) -> Result<f64, IngestError> {
    let v = &field.value;
    let fail = || {
        err(
            file,
            field.line,
            field.column,
            format!("bad {what} `{v}` (expected a JSON-grammar number)"),
        )
    };
    let mut s = v.as_str();
    s = s.strip_prefix('-').unwrap_or(s);
    let int_len = s.bytes().take_while(|b| b.is_ascii_digit()).count();
    if int_len == 0 || (int_len > 1 && s.starts_with('0')) {
        return Err(fail());
    }
    s = &s[int_len..];
    if let Some(rest) = s.strip_prefix('.') {
        let frac_len = rest.bytes().take_while(|b| b.is_ascii_digit()).count();
        if frac_len == 0 {
            return Err(fail());
        }
        s = &rest[frac_len..];
    }
    if let Some(rest) = s.strip_prefix(['e', 'E']) {
        let rest = rest.strip_prefix(['+', '-']).unwrap_or(rest);
        let exp_len = rest.bytes().take_while(|b| b.is_ascii_digit()).count();
        if exp_len == 0 {
            return Err(fail());
        }
        s = &rest[exp_len..];
    }
    if !s.is_empty() {
        return Err(fail());
    }
    let parsed: f64 = v.parse().map_err(|_| fail())?;
    if !parsed.is_finite() {
        return Err(fail());
    }
    Ok(parsed)
}

/// A fleet configuration imported from (or exportable to) a channel
/// directory.
///
/// Invariant (established by [`import_files`] / [`from_scada`],
/// assumed by [`export_files`]): the model is in *canonical
/// channel-directory form* — global measurement ids follow (IED id
/// order, per-IED recording order), every measurement is recorded by
/// exactly one IED, and every link's `a` endpoint is the
/// higher-numbered device.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportedConfig {
    /// Config name (the directory name).
    pub name: String,
    /// The lowered analyzer model.
    pub scada: ScadaConfig,
    /// Requested property (`obs|secured|baddata`).
    pub property: String,
}

impl ImportedConfig {
    /// The analysis input for this config.
    pub fn input(&self) -> crate::AnalysisInput {
        crate::AnalysisInput::from(self.scada.clone())
    }
}

const CHANNELS: &str = "channels.csv";
const GRID: &str = "grid.csv";
const SPEC: &str = "spec.csv";
const SECURITY: &str = "security.csv";
const TELEMETRY: &str = "telemetry.csv";
const MAPPING: &str = "mapping_telemetry.csv";
/// Point tables validated for shape but not lowered into the model.
const SHAPE_ONLY: [&str; 2] = ["signal.csv", "control.csv"];

/// Whether a directory entry is documentation/noise the importer
/// ignores rather than rejects.
fn ignored(name: &str) -> bool {
    name.starts_with('.') || name.starts_with("README")
}

fn parse_kind(file: &str, field: &CsvField) -> Result<DeviceKind, IngestError> {
    match field.value.as_str() {
        "master" => Ok(DeviceKind::Mtu),
        "rtu" => Ok(DeviceKind::Rtu),
        "ied" => Ok(DeviceKind::Ied),
        "router" => Ok(DeviceKind::Router),
        other => Err(err(
            file,
            field.line,
            field.column,
            format!("unknown channel kind `{other}` (expected master|rtu|ied|router)"),
        )),
    }
}

fn parse_medium(file: &str, field: &CsvField) -> Result<LinkMedium, IngestError> {
    match field.value.as_str() {
        "ethernet" => Ok(LinkMedium::Ethernet),
        "wireless" => Ok(LinkMedium::Wireless),
        "serial" => Ok(LinkMedium::Serial),
        "fiber" => Ok(LinkMedium::Fiber),
        other => Err(err(
            file,
            field.line,
            field.column,
            format!("unknown transport `{other}` (expected ethernet|wireless|serial|fiber)"),
        )),
    }
}

/// One parsed manifest row.
struct ChannelRow {
    name: String,
    kind: DeviceKind,
}

/// Imports one config from an abstract file map (relative `/`-separated
/// path → contents). Filesystem-free so determinism and fixed-point
/// properties can be tested without touching disk; [`import_dir`] is
/// the directory-backed wrapper.
///
/// # Errors
///
/// Returns the first [`IngestError`] encountered, addressed to the
/// offending file/line/column.
pub fn import_files(
    name: &str,
    files: &BTreeMap<String, String>,
) -> Result<ImportedConfig, IngestError> {
    // --- channels.csv: devices and links -----------------------------
    let manifest = files
        .get(CHANNELS)
        .ok_or_else(|| err(CHANNELS, 0, 0, "missing channel manifest"))?;
    let rows = table(
        CHANNELS,
        manifest,
        &["channel", "kind", "uplink", "transport", "bandwidth_kbps"],
    )?;
    if rows.is_empty() {
        return Err(err(CHANNELS, 0, 0, "no channels declared"));
    }
    let mut channels: Vec<ChannelRow> = Vec::with_capacity(rows.len());
    let mut by_name: BTreeMap<String, usize> = BTreeMap::new();
    let mut links: Vec<Link> = Vec::new();
    let mut link_pairs: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (index, row) in rows.iter().enumerate() {
        let [name_f, kind_f, uplink_f, transport_f, bandwidth_f] = &row.fields[..] else {
            unreachable!("table checked arity");
        };
        let cname = name_f.value.clone();
        if cname.is_empty()
            || !cname
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            return Err(err(
                CHANNELS,
                name_f.line,
                name_f.column,
                format!("bad channel name `{cname}` (use [A-Za-z0-9_-]+)"),
            ));
        }
        if by_name.insert(cname.clone(), index).is_some() {
            return Err(err(
                CHANNELS,
                name_f.line,
                name_f.column,
                format!("duplicate channel `{cname}`"),
            ));
        }
        let kind = parse_kind(CHANNELS, kind_f)?;
        let medium = parse_medium(CHANNELS, transport_f)?;
        let bandwidth = parse_count(CHANNELS, bandwidth_f, "bandwidth")?;
        if bandwidth == 0 || bandwidth > u32::MAX as usize {
            return Err(err(
                CHANNELS,
                bandwidth_f.line,
                bandwidth_f.column,
                "bandwidth_kbps must be positive and fit in 32 bits",
            ));
        }
        for peer in uplink_f.value.split_whitespace() {
            let Some(&peer_index) = by_name.get(peer) else {
                return Err(err(
                    CHANNELS,
                    uplink_f.line,
                    uplink_f.column,
                    format!("uplink `{peer}` must name an earlier channel"),
                ));
            };
            if peer_index == index {
                return Err(err(
                    CHANNELS,
                    uplink_f.line,
                    uplink_f.column,
                    format!("channel `{cname}` links to itself"),
                ));
            }
            let norm = (peer_index.min(index), peer_index.max(index));
            if link_pairs.insert(norm, row.line).is_some() {
                return Err(err(
                    CHANNELS,
                    uplink_f.line,
                    uplink_f.column,
                    format!("duplicate link between `{peer}` and `{cname}`"),
                ));
            }
            links.push(
                Link::new(DeviceId(index), DeviceId(peer_index))
                    .with_medium(medium)
                    .with_bandwidth_kbps(bandwidth as u32),
            );
        }
        channels.push(ChannelRow { name: cname, kind });
    }
    let masters = channels
        .iter()
        .filter(|c| c.kind == DeviceKind::Mtu)
        .count();
    if masters != 1 {
        return Err(err(
            CHANNELS,
            0,
            0,
            format!("expected exactly one master channel, found {masters}"),
        ));
    }

    // --- grid.csv: buses and lines -----------------------------------
    let grid = files
        .get(GRID)
        .ok_or_else(|| err(GRID, 0, 0, "missing grid table"))?;
    let rows = table(GRID, grid, &["element", "a", "b", "susceptance"])?;
    let mut n_buses: Option<usize> = None;
    let mut line_rows: Vec<(&CsvRecord, usize, usize, f64)> = Vec::new();
    for row in &rows {
        let [element_f, a_f, b_f, s_f] = &row.fields[..] else {
            unreachable!("table checked arity");
        };
        match element_f.value.as_str() {
            "bus" => {
                if n_buses.is_some() {
                    return Err(err(GRID, row.line, element_f.column, "duplicate bus row"));
                }
                if !b_f.value.is_empty() || !s_f.value.is_empty() {
                    return Err(err(
                        GRID,
                        row.line,
                        b_f.column,
                        "bus rows take only a count: `bus,<n>,,`",
                    ));
                }
                let count = parse_count(GRID, a_f, "bus count")?;
                if count == 0 {
                    return Err(err(
                        GRID,
                        a_f.line,
                        a_f.column,
                        "bus count must be positive",
                    ));
                }
                n_buses = Some(count);
            }
            "line" => {
                let a = parse_count(GRID, a_f, "bus")?;
                let b = parse_count(GRID, b_f, "bus")?;
                if a == b {
                    return Err(err(
                        GRID,
                        a_f.line,
                        a_f.column,
                        "line endpoints must differ",
                    ));
                }
                let susceptance = parse_float(GRID, s_f, "susceptance")?;
                if !(susceptance.is_finite() && susceptance > 0.0) {
                    return Err(err(
                        GRID,
                        s_f.line,
                        s_f.column,
                        format!(
                            "susceptance must be a positive finite number, got `{}`",
                            s_f.value
                        ),
                    ));
                }
                line_rows.push((row, a, b, susceptance));
            }
            other => {
                return Err(err(
                    GRID,
                    row.line,
                    element_f.column,
                    format!("unknown element `{other}` (expected bus|line)"),
                ));
            }
        }
    }
    let n_buses = n_buses.ok_or_else(|| err(GRID, 0, 0, "missing `bus,<n>,,` row"))?;
    let mut seen_lines: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    // Branches are constructed only after every row has been validated
    // against the (possibly later-declared) bus count: `Branch::new`
    // asserts, and an assert on config input would abort a fleet scan
    // instead of producing an error row.
    let mut branches: Vec<Branch> = Vec::with_capacity(line_rows.len());
    for (row, a, b, susceptance) in &line_rows {
        for &bus in &[*a, *b] {
            if bus == 0 || bus > n_buses {
                return Err(err(
                    GRID,
                    row.line,
                    row.fields[1].column,
                    format!("bus {bus} out of range 1..={n_buses}"),
                ));
            }
        }
        if seen_lines
            .insert(((*a).min(*b), (*a).max(*b)), row.line)
            .is_some()
        {
            return Err(err(
                GRID,
                row.line,
                row.fields[0].column,
                format!("duplicate line between bus {a} and bus {b}"),
            ));
        }
        branches.push(Branch::new(
            BusId::from_one_based(*a),
            BusId::from_one_based(*b),
            *susceptance,
        ));
    }
    let system = PowerSystem::new("config", n_buses, branches);

    // --- spec.csv ----------------------------------------------------
    let spec = files
        .get(SPEC)
        .ok_or_else(|| err(SPEC, 0, 0, "missing spec table"))?;
    let rows = table(SPEC, spec, &["key", "value"])?;
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    let mut resilience = (None::<usize>, None::<usize>);
    let mut corrupted: Option<usize> = None;
    let mut link_failures = 0usize;
    let mut property = "secured".to_string();
    for row in &rows {
        let [key_f, value_f] = &row.fields[..] else {
            unreachable!("table checked arity");
        };
        if seen.insert(key_f.value.clone(), row.line).is_some() {
            return Err(err(
                SPEC,
                key_f.line,
                key_f.column,
                format!("duplicate key `{}`", key_f.value),
            ));
        }
        match key_f.value.as_str() {
            "resilience_ieds" => resilience.0 = Some(parse_count(SPEC, value_f, "count")?),
            "resilience_rtus" => resilience.1 = Some(parse_count(SPEC, value_f, "count")?),
            "corrupted" => corrupted = Some(parse_count(SPEC, value_f, "count")?),
            "link_failures" => link_failures = parse_count(SPEC, value_f, "count")?,
            "property" => {
                if !PROPERTIES.contains(&value_f.value.as_str()) {
                    return Err(err(
                        SPEC,
                        value_f.line,
                        value_f.column,
                        format!(
                            "unknown property `{}` (expected obs|secured|baddata)",
                            value_f.value
                        ),
                    ));
                }
                property = value_f.value.clone();
            }
            other => {
                return Err(err(
                    SPEC,
                    key_f.line,
                    key_f.column,
                    format!("unknown key `{other}`"),
                ));
            }
        }
    }
    let (Some(k1), Some(k2)) = resilience else {
        return Err(err(
            SPEC,
            0,
            0,
            "missing `resilience_ieds` / `resilience_rtus`",
        ));
    };
    let corrupted = corrupted.ok_or_else(|| err(SPEC, 0, 0, "missing `corrupted`"))?;

    // --- per-IED channel directories ---------------------------------
    let mut kinds: Vec<MeasurementKind> = Vec::new();
    let mut ied_measurements: Vec<(DeviceId, Vec<MeasurementId>)> = Vec::new();
    // Every lowered measurement across all mapping tables, so a point
    // duplicating another point's measurement — within one IED or
    // across IEDs — fails here with an addressed error instead of
    // tripping `MeasurementSet::new`'s duplicate assert.
    let mut seen_kinds: std::collections::HashMap<MeasurementKind, (String, usize)> =
        std::collections::HashMap::new();
    for (index, channel) in channels.iter().enumerate() {
        let prefix = format!("{}/", channel.name);
        let has_dir_files = files
            .keys()
            .any(|k| k.starts_with(&prefix) && !ignored(&k[prefix.len()..]));
        if channel.kind != DeviceKind::Ied {
            if has_dir_files {
                return Err(err(
                    CHANNELS,
                    0,
                    0,
                    format!(
                        "channel `{}` is not an IED but has point tables under `{prefix}`",
                        channel.name
                    ),
                ));
            }
            continue;
        }
        let tele_path = format!("{prefix}{TELEMETRY}");
        let map_path = format!("{prefix}{MAPPING}");
        let telemetry = files
            .get(&tele_path)
            .ok_or_else(|| err(&tele_path, 0, 0, "missing telemetry point table"))?;
        let mapping = files
            .get(&map_path)
            .ok_or_else(|| err(&map_path, 0, 0, "missing telemetry mapping table"))?;
        let tele_rows = table(&tele_path, telemetry, &["point", "description"])?;
        let mut points: Vec<String> = Vec::with_capacity(tele_rows.len());
        let mut point_index: BTreeMap<String, usize> = BTreeMap::new();
        for row in &tele_rows {
            let point = &row.fields[0];
            if point.value.is_empty() {
                return Err(err(
                    &tele_path,
                    point.line,
                    point.column,
                    "empty point name",
                ));
            }
            if point_index
                .insert(point.value.clone(), points.len())
                .is_some()
            {
                return Err(err(
                    &tele_path,
                    point.line,
                    point.column,
                    format!("duplicate point `{}`", point.value),
                ));
            }
            points.push(point.value.clone());
        }
        let map_rows = table(&map_path, mapping, &["point", "kind", "a", "b"])?;
        let mut mapped: Vec<Option<MeasurementKind>> = vec![None; points.len()];
        for row in &map_rows {
            let [point_f, kind_f, a_f, b_f] = &row.fields[..] else {
                unreachable!("table checked arity");
            };
            let Some(&pi) = point_index.get(&point_f.value) else {
                return Err(err(
                    &map_path,
                    point_f.line,
                    point_f.column,
                    format!("unknown point `{}` (not in {TELEMETRY})", point_f.value),
                ));
            };
            let kind = match kind_f.value.as_str() {
                "flow" => {
                    let a = parse_count(&map_path, a_f, "bus")?;
                    let b = parse_count(&map_path, b_f, "bus")?;
                    if a == 0 || a > n_buses || b == 0 || b > n_buses {
                        return Err(err(
                            &map_path,
                            a_f.line,
                            a_f.column,
                            format!("bus out of range 1..={n_buses}"),
                        ));
                    }
                    let from = BusId::from_one_based(a);
                    let to = BusId::from_one_based(b);
                    let branch = system.branch_between(from, to).ok_or_else(|| {
                        err(
                            &map_path,
                            a_f.line,
                            a_f.column,
                            format!("no line between bus {a} and bus {b}"),
                        )
                    })?;
                    // `flow a b` measures at the `a` end, like the text
                    // config format.
                    if system.branch(branch).from == from {
                        MeasurementKind::FlowForward(branch)
                    } else {
                        MeasurementKind::FlowBackward(branch)
                    }
                }
                "injection" => {
                    let a = parse_count(&map_path, a_f, "bus")?;
                    if a == 0 || a > n_buses {
                        return Err(err(
                            &map_path,
                            a_f.line,
                            a_f.column,
                            format!("bus out of range 1..={n_buses}"),
                        ));
                    }
                    if !b_f.value.is_empty() {
                        return Err(err(
                            &map_path,
                            b_f.line,
                            b_f.column,
                            "injection rows take one bus: `point,injection,<bus>,`",
                        ));
                    }
                    MeasurementKind::Injection(BusId::from_one_based(a))
                }
                other => {
                    return Err(err(
                        &map_path,
                        kind_f.line,
                        kind_f.column,
                        format!("unknown measurement kind `{other}` (expected flow|injection)"),
                    ));
                }
            };
            if mapped[pi].replace(kind).is_some() {
                return Err(err(
                    &map_path,
                    point_f.line,
                    point_f.column,
                    format!("point `{}` mapped twice", point_f.value),
                ));
            }
            if let Some((first_file, first_line)) =
                seen_kinds.insert(kind, (map_path.clone(), row.line))
            {
                return Err(err(
                    &map_path,
                    point_f.line,
                    point_f.column,
                    format!(
                        "point `{}` duplicates measurement `{kind}` \
                         (first mapped at {first_file}:{first_line})",
                        point_f.value
                    ),
                ));
            }
        }
        let mut ids = Vec::with_capacity(points.len());
        for (pi, kind) in mapped.into_iter().enumerate() {
            let kind = kind.ok_or_else(|| {
                err(
                    &map_path,
                    0,
                    0,
                    format!("point `{}` has no mapping row", points[pi]),
                )
            })?;
            ids.push(MeasurementId(kinds.len()));
            kinds.push(kind);
        }
        if !ids.is_empty() {
            ied_measurements.push((DeviceId(index), ids));
        }
        for shape in SHAPE_ONLY {
            if let Some(text) = files.get(&format!("{prefix}{shape}")) {
                let path = format!("{prefix}{shape}");
                let rows = table(&path, text, &["point", "description"])?;
                let mut names: BTreeMap<String, usize> = BTreeMap::new();
                for row in &rows {
                    let point = &row.fields[0];
                    if point.value.is_empty() {
                        return Err(err(&path, point.line, point.column, "empty point name"));
                    }
                    if names.insert(point.value.clone(), row.line).is_some() {
                        return Err(err(
                            &path,
                            point.line,
                            point.column,
                            format!("duplicate point `{}`", point.value),
                        ));
                    }
                }
            }
        }
    }
    let measurements = MeasurementSet::new(system, kinds);

    // --- security.csv ------------------------------------------------
    let devices: Vec<Device> = channels
        .iter()
        .enumerate()
        .map(|(i, c)| Device::new(DeviceId(i), c.kind))
        .collect();
    let mut topology = Topology::new(devices, links);
    if let Some(text) = files.get(SECURITY) {
        let rows = table(SECURITY, text, &["a", "b", "profiles"])?;
        let mut pairs: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for row in &rows {
            let [a_f, b_f, profiles_f] = &row.fields[..] else {
                unreachable!("table checked arity");
            };
            let resolve = |f: &CsvField| -> Result<usize, IngestError> {
                by_name.get(&f.value).copied().ok_or_else(|| {
                    err(
                        SECURITY,
                        f.line,
                        f.column,
                        format!("unknown channel `{}`", f.value),
                    )
                })
            };
            let a = resolve(a_f)?;
            let b = resolve(b_f)?;
            if a == b {
                return Err(err(
                    SECURITY,
                    a_f.line,
                    a_f.column,
                    "security pair endpoints must differ",
                ));
            }
            if pairs.insert((a.min(b), a.max(b)), row.line).is_some() {
                return Err(err(
                    SECURITY,
                    a_f.line,
                    a_f.column,
                    format!("duplicate security pair `{}`/`{}`", a_f.value, b_f.value),
                ));
            }
            let tokens: Vec<&str> = profiles_f.value.split_whitespace().collect();
            if tokens.is_empty() || !tokens.len().is_multiple_of(2) {
                return Err(err(
                    SECURITY,
                    profiles_f.line,
                    profiles_f.column,
                    "profiles must be one or more `algo bits` pairs",
                ));
            }
            let mut profiles = Vec::with_capacity(tokens.len() / 2);
            for pair in tokens.chunks(2) {
                let profile: CryptoProfile =
                    format!("{} {}", pair[0], pair[1]).parse().map_err(|e| {
                        err(SECURITY, profiles_f.line, profiles_f.column, format!("{e}"))
                    })?;
                profiles.push(profile);
            }
            topology.set_pair_security(DeviceId(a), DeviceId(b), profiles);
        }
    }

    // --- unexpected files --------------------------------------------
    for path in files.keys() {
        let mut parts = path.split('/');
        let (first, second, rest) = (parts.next().unwrap_or(""), parts.next(), parts.next());
        if rest.is_some() {
            return Err(err(
                path,
                0,
                0,
                "unexpected nesting (configs are one level deep)",
            ));
        }
        match second {
            None => {
                if !matches!(first, CHANNELS | GRID | SPEC | SECURITY) && !ignored(first) {
                    return Err(err(path, 0, 0, "unexpected file"));
                }
            }
            Some(leaf) => {
                let known_channel = by_name.contains_key(first);
                let known_leaf = leaf == TELEMETRY || leaf == MAPPING || SHAPE_ONLY.contains(&leaf);
                if ignored(leaf) {
                    continue;
                }
                if !known_channel {
                    return Err(err(
                        path,
                        0,
                        0,
                        format!("directory `{first}` is not a channel"),
                    ));
                }
                if !known_leaf {
                    return Err(err(path, 0, 0, "unexpected file"));
                }
            }
        }
    }

    // --- final topology validation (never panic in AnalysisInput) ----
    let problems = topology.validate();
    if let Some(problem) = problems.first() {
        return Err(err(
            CHANNELS,
            0,
            0,
            format!("invalid topology: {problem:?}"),
        ));
    }

    Ok(ImportedConfig {
        name: name.to_string(),
        scada: ScadaConfig {
            measurements,
            topology,
            ied_measurements,
            resilience: (k1, k2),
            corrupted,
            link_failures,
        },
        property,
    })
}

/// Imports one config directory from disk. The config name is the
/// directory's file name.
///
/// # Errors
///
/// I/O and UTF-8 failures are reported as whole-file [`IngestError`]s;
/// everything else is [`import_files`].
pub fn import_dir(dir: &Path) -> Result<ImportedConfig, IngestError> {
    let name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "config".to_string());
    let mut files = BTreeMap::new();
    let read_err = |path: &str, e: std::io::Error| err(path, 0, 0, format!("cannot read: {e}"));
    let entries =
        std::fs::read_dir(dir).map_err(|e| err(&name, 0, 0, format!("cannot read: {e}")))?;
    let mut top: Vec<std::fs::DirEntry> = entries
        .collect::<Result<_, _>>()
        .map_err(|e| err(&name, 0, 0, format!("cannot read: {e}")))?;
    top.sort_by_key(|e| e.file_name());
    for entry in top {
        let entry_name = entry.file_name().to_string_lossy().into_owned();
        if ignored(&entry_name) {
            continue;
        }
        let path = entry.path();
        if path.is_dir() {
            let inner = std::fs::read_dir(&path).map_err(|e| read_err(&entry_name, e))?;
            let mut leaves: Vec<std::fs::DirEntry> = inner
                .collect::<Result<_, _>>()
                .map_err(|e| read_err(&entry_name, e))?;
            leaves.sort_by_key(|e| e.file_name());
            for leaf in leaves {
                let leaf_name = leaf.file_name().to_string_lossy().into_owned();
                if ignored(&leaf_name) {
                    continue;
                }
                let rel = format!("{entry_name}/{leaf_name}");
                if leaf.path().is_dir() {
                    return Err(err(
                        &rel,
                        0,
                        0,
                        "unexpected nesting (configs are one level deep)",
                    ));
                }
                let text = std::fs::read_to_string(leaf.path()).map_err(|e| read_err(&rel, e))?;
                files.insert(rel, text);
            }
        } else {
            let text = std::fs::read_to_string(&path).map_err(|e| read_err(&entry_name, e))?;
            files.insert(entry_name, text);
        }
    }
    import_files(&name, &files)
}

/// Quotes a CSV field if it needs quoting.
fn csv_field(value: &str) -> String {
    if value.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// The canonical channel name for a device.
fn channel_name(device: &Device) -> String {
    let prefix = match device.kind() {
        DeviceKind::Ied => "ied",
        DeviceKind::Rtu => "rtu",
        DeviceKind::Mtu => "mtu",
        DeviceKind::Router => "rtr",
    };
    format!("{prefix}{:03}", device.id().one_based())
}

/// Exports a config to its canonical channel-directory file map (the
/// inverse of [`import_files`] up to generated channel/point names).
pub fn export_files(config: &ImportedConfig) -> BTreeMap<String, String> {
    let mut files = BTreeMap::new();
    let scada = &config.scada;
    let topology = &scada.topology;
    let names: Vec<String> = topology.devices().iter().map(channel_name).collect();

    let mut manifest = String::from("channel,kind,uplink,transport,bandwidth_kbps\n");
    for device in topology.devices() {
        let kind = match device.kind() {
            DeviceKind::Ied => "ied",
            DeviceKind::Rtu => "rtu",
            DeviceKind::Mtu => "master",
            DeviceKind::Router => "router",
        };
        let declared: Vec<&Link> = topology
            .links()
            .iter()
            .filter(|l| l.a == device.id())
            .collect();
        let uplinks: Vec<&str> = declared
            .iter()
            .map(|l| names[l.b.index()].as_str())
            .collect();
        let (medium, bandwidth) = declared
            .first()
            .map(|l| (l.medium, l.bandwidth_kbps))
            .unwrap_or((LinkMedium::Ethernet, 10_000));
        manifest.push_str(&format!(
            "{},{},{},{},{}\n",
            names[device.id().index()],
            kind,
            csv_field(&uplinks.join(" ")),
            medium,
            bandwidth,
        ));
    }
    files.insert(CHANNELS.to_string(), manifest);

    let system = scada.measurements.system();
    let mut grid = String::from("element,a,b,susceptance\n");
    grid.push_str(&format!("bus,{},,\n", system.num_buses()));
    for branch in system.branches() {
        grid.push_str(&format!(
            "line,{},{},{}\n",
            branch.from.index() + 1,
            branch.to.index() + 1,
            branch.susceptance,
        ));
    }
    files.insert(GRID.to_string(), grid);

    let mut spec = String::from("key,value\n");
    spec.push_str(&format!("resilience_ieds,{}\n", scada.resilience.0));
    spec.push_str(&format!("resilience_rtus,{}\n", scada.resilience.1));
    spec.push_str(&format!("corrupted,{}\n", scada.corrupted));
    spec.push_str(&format!("link_failures,{}\n", scada.link_failures));
    spec.push_str(&format!("property,{}\n", config.property));
    files.insert(SPEC.to_string(), spec);

    let mut security = String::from("a,b,profiles\n");
    let mut entries: Vec<_> = topology.pair_security_entries().collect();
    entries.sort_by_key(|&(a, b, _)| (a, b));
    for (a, b, profiles) in entries {
        let rendered: Vec<String> = profiles.iter().map(|p| p.to_string()).collect();
        security.push_str(&format!(
            "{},{},{}\n",
            names[a.index()],
            names[b.index()],
            csv_field(&rendered.join(" ")),
        ));
    }
    files.insert(SECURITY.to_string(), security);

    let mut recorded: BTreeMap<usize, &[MeasurementId]> = BTreeMap::new();
    for (ied, ids) in &scada.ied_measurements {
        recorded.insert(ied.index(), ids);
    }
    for device in topology.devices() {
        if device.kind() != DeviceKind::Ied {
            continue;
        }
        let ids = recorded.get(&device.id().index()).copied().unwrap_or(&[]);
        let mut telemetry = String::from("point,description\n");
        let mut mapping = String::from("point,kind,a,b\n");
        for (i, id) in ids.iter().enumerate() {
            let point = format!("p{:03}", i + 1);
            let (kind, a, b, desc) = match scada.measurements.kind(*id) {
                MeasurementKind::FlowForward(br) => {
                    let branch = system.branch(br);
                    let (a, b) = (branch.from.index() + 1, branch.to.index() + 1);
                    (
                        "flow",
                        a.to_string(),
                        b.to_string(),
                        format!("flow bus {a} to bus {b}"),
                    )
                }
                MeasurementKind::FlowBackward(br) => {
                    let branch = system.branch(br);
                    let (a, b) = (branch.to.index() + 1, branch.from.index() + 1);
                    (
                        "flow",
                        a.to_string(),
                        b.to_string(),
                        format!("flow bus {a} to bus {b}"),
                    )
                }
                MeasurementKind::Injection(bus) => {
                    let a = bus.index() + 1;
                    (
                        "injection",
                        a.to_string(),
                        String::new(),
                        format!("injection at bus {a}"),
                    )
                }
            };
            telemetry.push_str(&format!("{point},{}\n", csv_field(&desc)));
            mapping.push_str(&format!("{point},{kind},{a},{b}\n"));
        }
        let dir = &names[device.id().index()];
        files.insert(format!("{dir}/{TELEMETRY}"), telemetry);
        files.insert(format!("{dir}/{MAPPING}"), mapping);
    }
    files
}

/// Writes a config's canonical file map under `dir` (creating it).
///
/// # Errors
///
/// I/O failures are reported as whole-file [`IngestError`]s.
pub fn export_dir(config: &ImportedConfig, dir: &Path) -> Result<(), IngestError> {
    for (rel, text) in export_files(config) {
        let path = dir.join(&rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| err(&rel, 0, 0, format!("cannot create directory: {e}")))?;
        }
        std::fs::write(&path, text).map_err(|e| err(&rel, 0, 0, format!("cannot write: {e}")))?;
    }
    Ok(())
}

/// Canonicalizes an arbitrary [`ScadaConfig`] into channel-directory
/// form: links reoriented onto their higher-numbered endpoint and
/// sorted, measurements renumbered into (IED id order, recording
/// order), pair-security entries re-inserted in normalized order.
///
/// The resulting model is semantically equivalent but *not* hash-equal
/// to the input (measurement ids are positional); it is the identity on
/// configs already in canonical form, and
/// `import_files(name, &export_files(&from_scada(..)?))` reproduces it
/// exactly.
///
/// # Errors
///
/// Rejects models the channel-directory form cannot express: no or
/// multiple MTUs, retired devices or per-device crypto attributes,
/// self/duplicate links, heterogeneous transports among one device's
/// declared links, measurements recorded by no IED or more than once.
pub fn from_scada(
    name: &str,
    scada: &ScadaConfig,
    property: &str,
) -> Result<ImportedConfig, IngestError> {
    let reject = |message: String| err(name, 0, 0, message);
    if !PROPERTIES.contains(&property) {
        return Err(reject(format!("unknown property `{property}`")));
    }
    let topology = &scada.topology;
    let masters = topology
        .devices()
        .iter()
        .filter(|d| d.kind() == DeviceKind::Mtu)
        .count();
    if masters != 1 {
        return Err(reject(format!("expected exactly one MTU, found {masters}")));
    }
    let mut devices = Vec::with_capacity(topology.num_devices());
    for device in topology.devices() {
        if device.retired() {
            return Err(reject(format!(
                "device {} is retired (not expressible as a channel directory)",
                device.id().one_based()
            )));
        }
        devices.push(Device::new(device.id(), device.kind()));
    }

    // Links: reorient so `a` is the higher-numbered endpoint (the
    // declaring channel), sort, and require per-channel uniform
    // transport.
    let mut links: Vec<Link> = Vec::with_capacity(topology.links().len());
    let mut pairs: BTreeMap<(usize, usize), ()> = BTreeMap::new();
    for link in topology.links() {
        let (hi, lo) = if link.a.index() >= link.b.index() {
            (link.a, link.b)
        } else {
            (link.b, link.a)
        };
        if hi == lo {
            return Err(reject(format!("self-link at device {}", hi.one_based())));
        }
        if pairs.insert((lo.index(), hi.index()), ()).is_some() {
            return Err(reject(format!(
                "duplicate link between devices {} and {}",
                lo.one_based(),
                hi.one_based()
            )));
        }
        links.push(
            Link::new(hi, lo)
                .with_medium(link.medium)
                .with_bandwidth_kbps(link.bandwidth_kbps),
        );
    }
    links.sort_by_key(|l| (l.a.index(), l.b.index()));
    for window in links.windows(2) {
        if window[0].a == window[1].a
            && (window[0].medium != window[1].medium
                || window[0].bandwidth_kbps != window[1].bandwidth_kbps)
        {
            return Err(reject(format!(
                "device {} declares links with mixed transports",
                window[0].a.one_based()
            )));
        }
    }

    // Measurements: every one recorded exactly once; renumber into
    // (IED id order, recording order).
    let mut entries: Vec<(DeviceId, Vec<MeasurementId>)> = scada
        .ied_measurements
        .iter()
        .filter(|(_, ids)| !ids.is_empty())
        .cloned()
        .collect();
    entries.sort_by_key(|(ied, _)| ied.index());
    let total = scada.measurements.len();
    let mut new_id: Vec<Option<usize>> = vec![None; total];
    let mut order: Vec<MeasurementId> = Vec::with_capacity(total);
    for (ied, ids) in &entries {
        for id in ids {
            if id.index() >= total {
                return Err(reject(format!(
                    "measurement {} out of range",
                    id.index() + 1
                )));
            }
            if new_id[id.index()].replace(order.len()).is_some() {
                return Err(reject(format!(
                    "measurement {} recorded twice (IED {})",
                    id.index() + 1,
                    ied.one_based()
                )));
            }
            order.push(*id);
        }
    }
    if order.len() != total {
        let missing = (0..total).find(|i| new_id[*i].is_none()).unwrap_or(0);
        return Err(reject(format!(
            "measurement {} is recorded by no IED",
            missing + 1
        )));
    }
    let system = scada.measurements.system();
    let new_system = PowerSystem::new("config", system.num_buses(), system.branches().to_vec());
    let new_kinds: Vec<MeasurementKind> = order
        .iter()
        .map(|id| scada.measurements.kind(*id))
        .collect();
    let measurements = MeasurementSet::new(new_system, new_kinds);
    let ied_measurements: Vec<(DeviceId, Vec<MeasurementId>)> = entries
        .iter()
        .map(|(ied, ids)| {
            (
                *ied,
                ids.iter()
                    .map(|id| MeasurementId(new_id[id.index()].expect("renumbered above")))
                    .collect(),
            )
        })
        .collect();

    let mut new_topology = Topology::new(devices, links);
    let mut security: Vec<_> = topology.pair_security_entries().collect();
    security.sort_by_key(|&(a, b, _)| (a, b));
    for (a, b, profiles) in security {
        if profiles.is_empty() {
            return Err(reject(format!(
                "empty security entry {}/{} (not expressible as a channel directory)",
                a.one_based(),
                b.one_based()
            )));
        }
        new_topology.set_pair_security(a, b, profiles.to_vec());
    }

    Ok(ImportedConfig {
        name: name.to_string(),
        scada: ScadaConfig {
            measurements,
            topology: new_topology,
            ied_measurements,
            resilience: scada.resilience,
            corrupted: scada.corrupted,
            link_failures: scada.link_failures,
        },
        property: property.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(record: &CsvRecord) -> Vec<&str> {
        record.fields.iter().map(|f| f.value.as_str()).collect()
    }

    #[test]
    fn csv_basic_quoting_and_escapes() {
        let rows = parse_csv("t.csv", "a,\"b,c\",\"say \"\"hi\"\"\"\nd,,f\n").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(fields(&rows[0]), ["a", "b,c", "say \"hi\""]);
        assert_eq!(fields(&rows[1]), ["d", "", "f"]);
    }

    #[test]
    fn csv_crlf_bom_and_blank_lines() {
        let rows = parse_csv("t.csv", "\u{feff}a,b\r\n\r\n\nc,d\r\n").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(fields(&rows[0]), ["a", "b"]);
        assert_eq!(fields(&rows[1]), ["c", "d"]);
        assert_eq!(rows[1].line, 4);
    }

    #[test]
    fn csv_quoted_newline_spans_lines() {
        let rows = parse_csv("t.csv", "a,\"x\ny\"\nb,c\n").unwrap();
        assert_eq!(fields(&rows[0]), ["a", "x\ny"]);
        assert_eq!(rows[1].line, 3);
    }

    #[test]
    fn csv_trailing_field_and_missing_final_newline() {
        let rows = parse_csv("t.csv", "a,b,\nc,").unwrap();
        assert_eq!(fields(&rows[0]), ["a", "b", ""]);
        assert_eq!(fields(&rows[1]), ["c", ""]);
    }

    #[test]
    fn csv_rejects_unbalanced_quote() {
        let e = parse_csv("t.csv", "a,\"oops\n").unwrap_err();
        assert!(e.message.contains("unbalanced"), "{e}");
        assert_eq!((e.line, e.column), (1, 3));
    }

    #[test]
    fn csv_rejects_stray_after_closing_quote() {
        let e = parse_csv("t.csv", "\"a\"b,c\n").unwrap_err();
        assert!(e.message.contains("after closing quote"), "{e}");
        assert_eq!((e.line, e.column), (1, 4));
    }

    #[test]
    fn csv_rejects_quote_inside_unquoted_field() {
        let e = parse_csv("t.csv", "ab\"c,d\n").unwrap_err();
        assert!(e.message.contains("unquoted"), "{e}");
        assert_eq!((e.line, e.column), (1, 3));
    }

    #[test]
    fn csv_rejects_bare_carriage_return() {
        let e = parse_csv("t.csv", "a\rb\n").unwrap_err();
        assert!(e.message.contains("carriage return"), "{e}");
    }

    #[test]
    fn numbers_are_strict() {
        let f = |v: &str| CsvField {
            line: 1,
            column: 1,
            value: v.to_string(),
        };
        assert_eq!(parse_count("t", &f("42"), "n").unwrap(), 42);
        assert!(parse_count("t", &f("042"), "n").is_err());
        assert!(parse_count("t", &f("+4"), "n").is_err());
        assert!(parse_count("t", &f(""), "n").is_err());
        assert_eq!(parse_float("t", &f("-5.1169"), "s").unwrap(), -5.1169);
        assert_eq!(parse_float("t", &f("1e3"), "s").unwrap(), 1000.0);
        for bad in ["01", "1.", ".5", "1e", "nan", "inf", "0x1", "1 "] {
            assert!(parse_float("t", &f(bad), "s").is_err(), "accepted `{bad}`");
        }
    }

    fn tiny_files() -> BTreeMap<String, String> {
        let mut files = BTreeMap::new();
        files.insert(
            "channels.csv".to_string(),
            "channel,kind,uplink,transport,bandwidth_kbps\n\
             mtu001,master,,ethernet,10000\n\
             rtu002,rtu,mtu001,ethernet,10000\n\
             ied003,ied,rtu002,serial,1200\n"
                .to_string(),
        );
        files.insert(
            "grid.csv".to_string(),
            "element,a,b,susceptance\nbus,2,,\nline,1,2,16.9\n".to_string(),
        );
        files.insert(
            "spec.csv".to_string(),
            "key,value\nresilience_ieds,1\nresilience_rtus,0\ncorrupted,1\nproperty,secured\n"
                .to_string(),
        );
        files.insert(
            "security.csv".to_string(),
            "a,b,profiles\nied003,rtu002,chap 64 sha2 128\n".to_string(),
        );
        files.insert(
            "ied003/telemetry.csv".to_string(),
            "point,description\np001,\"flow, 1 to 2\"\np002,reverse flow\np003,injection\n"
                .to_string(),
        );
        files.insert(
            "ied003/mapping_telemetry.csv".to_string(),
            "point,kind,a,b\np001,flow,1,2\np002,flow,2,1\np003,injection,2,\n".to_string(),
        );
        files
    }

    #[test]
    fn imports_tiny_config() {
        let config = import_files("tiny", &tiny_files()).unwrap();
        let scada = &config.scada;
        assert_eq!(scada.measurements.len(), 3);
        assert_eq!(scada.topology.num_devices(), 3);
        assert_eq!(scada.topology.links().len(), 2);
        assert_eq!(scada.resilience, (1, 0));
        assert_eq!(scada.corrupted, 1);
        assert_eq!(config.property, "secured");
        assert!(matches!(
            scada.measurements.kind(MeasurementId(1)),
            MeasurementKind::FlowBackward(_)
        ));
        assert_eq!(
            scada.ied_measurements,
            vec![(
                DeviceId(2),
                vec![MeasurementId(0), MeasurementId(1), MeasurementId(2)]
            )]
        );
        assert_eq!(
            scada.topology.pair_security(DeviceId(2), DeviceId(1)).len(),
            2
        );
        // The link transports follow the declaring channel's manifest row.
        assert_eq!(scada.topology.links()[1].medium, LinkMedium::Serial);
        assert_eq!(scada.topology.links()[1].bandwidth_kbps, 1200);
    }

    #[test]
    fn export_import_is_a_fixed_point() {
        let config = import_files("tiny", &tiny_files()).unwrap();
        let again = import_files("tiny", &export_files(&config)).unwrap();
        assert_eq!(config, again);
        let third = import_files("tiny", &export_files(&again)).unwrap();
        assert_eq!(again, third);
    }

    #[test]
    fn from_scada_is_identity_on_canonical_configs() {
        let config = import_files("tiny", &tiny_files()).unwrap();
        let canonical = from_scada("tiny", &config.scada, &config.property).unwrap();
        assert_eq!(config, canonical);
    }

    #[test]
    fn error_positions_are_addressed() {
        let mut files = tiny_files();
        files.insert(
            "grid.csv".to_string(),
            "element,a,b,susceptance\nbus,2,,\nline,1,2,16.9\nline,1,9,1.0\n".to_string(),
        );
        let e = import_files("tiny", &files).unwrap_err();
        assert_eq!(e.file, "grid.csv");
        assert_eq!(e.line, 4);
        assert!(e.message.contains("out of range"), "{e}");

        let mut files = tiny_files();
        files.insert(
            "ied003/mapping_telemetry.csv".to_string(),
            "point,kind,a,b\np001,flow,1,2\np002,flow,2,1\n".to_string(),
        );
        let e = import_files("tiny", &files).unwrap_err();
        assert_eq!(e.file, "ied003/mapping_telemetry.csv");
        assert!(e.message.contains("no mapping row"), "{e}");
    }

    #[test]
    fn malformed_grid_is_an_error_not_a_panic() {
        // Zero susceptance must not reach Branch::new's assert.
        let mut files = tiny_files();
        files.insert(
            "grid.csv".to_string(),
            "element,a,b,susceptance\nbus,2,,\nline,1,2,0\n".to_string(),
        );
        let e = import_files("tiny", &files).unwrap_err();
        assert_eq!((e.file.as_str(), e.line), ("grid.csv", 3));
        assert!(e.message.contains("susceptance"), "{e}");

        // Negative susceptance likewise.
        let mut files = tiny_files();
        files.insert(
            "grid.csv".to_string(),
            "element,a,b,susceptance\nbus,2,,\nline,1,2,-16.9\n".to_string(),
        );
        let e = import_files("tiny", &files).unwrap_err();
        assert!(e.message.contains("susceptance"), "{e}");

        // An overflowing literal parses to +inf; parse_float already
        // rejects it as outside the JSON number grammar.
        let mut files = tiny_files();
        files.insert(
            "grid.csv".to_string(),
            "element,a,b,susceptance\nbus,2,,\nline,1,2,1e999\n".to_string(),
        );
        let e = import_files("tiny", &files).unwrap_err();
        assert!(e.message.contains("susceptance"), "{e}");

        // Bus 0 must be a range error, not clamped into a self-loop.
        let mut files = tiny_files();
        files.insert(
            "grid.csv".to_string(),
            "element,a,b,susceptance\nbus,2,,\nline,0,1,16.9\n".to_string(),
        );
        let e = import_files("tiny", &files).unwrap_err();
        assert_eq!((e.file.as_str(), e.line), ("grid.csv", 3));
        assert!(e.message.contains("out of range"), "{e}");
    }

    #[test]
    fn duplicate_measurements_are_an_error_not_a_panic() {
        // Two points lowering to the same measurement within one IED
        // must not reach MeasurementSet::new's duplicate assert.
        let mut files = tiny_files();
        files.insert(
            "ied003/mapping_telemetry.csv".to_string(),
            "point,kind,a,b\np001,flow,1,2\np002,flow,1,2\np003,injection,2,\n".to_string(),
        );
        let e = import_files("tiny", &files).unwrap_err();
        assert_eq!(e.file, "ied003/mapping_telemetry.csv");
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicates measurement"), "{e}");
        assert!(e.message.contains("mapping_telemetry.csv:2"), "{e}");

        // The same collision across two IEDs is caught the same way.
        let mut files = tiny_files();
        files.insert(
            "channels.csv".to_string(),
            "channel,kind,uplink,transport,bandwidth_kbps\n\
             mtu001,master,,ethernet,10000\n\
             rtu002,rtu,mtu001,ethernet,10000\n\
             ied003,ied,rtu002,serial,1200\n\
             ied004,ied,rtu002,serial,1200\n"
                .to_string(),
        );
        files.insert(
            "ied004/telemetry.csv".to_string(),
            "point,description\nq001,same flow\n".to_string(),
        );
        files.insert(
            "ied004/mapping_telemetry.csv".to_string(),
            "point,kind,a,b\nq001,flow,1,2\n".to_string(),
        );
        let e = import_files("tiny", &files).unwrap_err();
        assert_eq!(e.file, "ied004/mapping_telemetry.csv");
        assert!(
            e.message.contains("ied003/mapping_telemetry.csv:2"),
            "duplicate must name the first site: {e}"
        );
    }

    #[test]
    fn rejects_forward_uplinks_and_duplicate_links() {
        let mut files = tiny_files();
        files.insert(
            "channels.csv".to_string(),
            "channel,kind,uplink,transport,bandwidth_kbps\n\
             mtu001,master,rtu002,ethernet,10000\n\
             rtu002,rtu,,ethernet,10000\n\
             ied003,ied,rtu002,serial,1200\n"
                .to_string(),
        );
        let e = import_files("tiny", &files).unwrap_err();
        assert!(e.message.contains("earlier channel"), "{e}");
    }

    #[test]
    fn rejects_unexpected_files_but_ignores_readmes() {
        let mut files = tiny_files();
        files.insert("README.md".to_string(), "docs\n".to_string());
        files.insert("ied003/.hidden".to_string(), "x\n".to_string());
        assert!(import_files("tiny", &files).is_ok());
        files.insert("notes.txt".to_string(), "x\n".to_string());
        let e = import_files("tiny", &files).unwrap_err();
        assert_eq!(e.file, "notes.txt");
    }

    #[test]
    fn rejects_point_tables_on_non_ied_channels() {
        let mut files = tiny_files();
        files.insert(
            "rtu002/telemetry.csv".to_string(),
            "point,description\np001,x\n".to_string(),
        );
        let e = import_files("tiny", &files).unwrap_err();
        assert!(e.message.contains("not an IED"), "{e}");
    }

    #[test]
    fn missing_spec_keys_are_reported() {
        let mut files = tiny_files();
        files.insert(
            "spec.csv".to_string(),
            "key,value\ncorrupted,1\n".to_string(),
        );
        let e = import_files("tiny", &files).unwrap_err();
        assert_eq!(e.file, "spec.csv");
        assert!(e.message.contains("resilience"), "{e}");
    }
}
