//! The verification engine.
//!
//! [`Analyzer`] owns a symbolic model ([`crate::encode::ModelEncoder`])
//! and a concrete evaluator ([`crate::bruteforce::DirectEvaluator`]).
//! Verification queries are solved incrementally under assumptions; a
//! `sat` answer yields a threat vector, which is then *minimized* against
//! the direct evaluator so reported vectors never contain gratuitous
//! failures. `unsat` certifies resiliency, exactly as in §IV-A.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use crate::bruteforce::DirectEvaluator;
use crate::encode::{EncodingStats, ModelEncoder};
use crate::input::AnalysisInput;
use crate::spec::{Property, ResiliencySpec};
use crate::threat::ThreatVector;

/// The outcome of a verification query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// `unsat`: no failure set within the budget violates the property.
    Resilient,
    /// `sat`: the returned (minimal) threat vector violates the property.
    Threat(ThreatVector),
}

impl Verdict {
    /// Whether the system met the specification.
    pub fn is_resilient(&self) -> bool {
        matches!(self, Verdict::Resilient)
    }
}

/// A verification result with measurements, for the evaluation harness.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// The property verified.
    pub property: Property,
    /// The specification verified against.
    pub spec: ResiliencySpec,
    /// The outcome.
    pub verdict: Verdict,
    /// Wall-clock time of the query (encode-on-demand + solve).
    pub duration: Duration,
    /// Encoding sizes after the query.
    pub encoding: EncodingStats,
    /// Solver conflicts spent on this query.
    pub conflicts: u64,
}

/// The SCADA resiliency analyzer.
///
/// # Examples
///
/// ```
/// use scada_analyzer::casestudy::five_bus_case_study;
/// use scada_analyzer::{Analyzer, Property, ResiliencySpec};
///
/// let input = five_bus_case_study();
/// let mut analyzer = Analyzer::new(&input);
/// let verdict = analyzer.verify(Property::Observability, ResiliencySpec::split(1, 1));
/// assert!(verdict.is_resilient());
/// ```
#[derive(Debug)]
pub struct Analyzer<'a> {
    input: &'a AnalysisInput,
    encoder: ModelEncoder,
    evaluator: DirectEvaluator<'a>,
}

impl<'a> Analyzer<'a> {
    /// Builds the analyzer (encodes the base model, enumerates paths).
    pub fn new(input: &'a AnalysisInput) -> Analyzer<'a> {
        Analyzer {
            encoder: ModelEncoder::new(input),
            evaluator: DirectEvaluator::new(input),
            input,
        }
    }

    /// The input under analysis (with the input's own lifetime, so the
    /// reference does not hold a borrow of the analyzer).
    pub fn input(&self) -> &'a AnalysisInput {
        self.input
    }

    /// The direct evaluator (reference semantics).
    pub fn evaluator(&self) -> &DirectEvaluator<'a> {
        &self.evaluator
    }

    /// Mutable access to the symbolic model (threat enumeration adds
    /// blocking clauses through this).
    pub(crate) fn encoder_mut(&mut self) -> &mut ModelEncoder {
        &mut self.encoder
    }

    /// Verifies a property against a specification.
    pub fn verify(&mut self, property: Property, spec: ResiliencySpec) -> Verdict {
        self.verify_with_report(property, spec).verdict
    }

    /// Verifies and returns timing/size measurements.
    pub fn verify_with_report(
        &mut self,
        property: Property,
        spec: ResiliencySpec,
    ) -> VerificationReport {
        let start = Instant::now();
        let conflicts_before = self.encoder.solver_stats().conflicts;
        let verdict = match self.encoder.find_violation(self.input, property, spec) {
            None => Verdict::Resilient,
            Some(violation) => {
                let failed: HashSet<_> = violation.devices.into_iter().collect();
                let failed_links: HashSet<usize> = violation.links.into_iter().collect();
                debug_assert!(
                    self.evaluator
                        .violates_full(property, spec.corrupted, &failed, &failed_links),
                    "solver threat not confirmed by direct evaluation"
                );
                let minimal =
                    self.evaluator
                        .minimize_full(property, spec.corrupted, &failed, &failed_links);
                Verdict::Threat(minimal)
            }
        };
        VerificationReport {
            property,
            spec,
            verdict,
            duration: start.elapsed(),
            encoding: self.encoder.stats(),
            conflicts: self.encoder.solver_stats().conflicts - conflicts_before,
        }
    }
}
