//! The verification engine.
//!
//! [`Analyzer`] owns a symbolic model ([`crate::encode::ModelEncoder`])
//! and a concrete evaluator ([`crate::bruteforce::DirectEvaluator`]).
//! Verification queries are solved incrementally under assumptions; a
//! `sat` answer yields a threat vector, which is then *minimized* against
//! the direct evaluator so reported vectors never contain gratuitous
//! failures. `unsat` certifies resiliency, exactly as in §IV-A.
//!
//! Queries may be resource-bounded ([`QueryLimits`]): a wall-clock
//! deadline, a per-solve conflict budget with a Luby-style escalating
//! retry policy, and a cooperative interrupt flag. A bounded query that
//! runs out of resources degrades to [`Verdict::Unknown`] — a sound
//! "could not decide", never misreported as `Resilient`.

use std::borrow::Cow;
use std::collections::HashSet;
use std::time::{Duration, Instant};

use scadasim::DeviceId;

use crate::bruteforce::DirectEvaluator;
use crate::certify::{CertSession, Certificate, CertifyOptions};
use crate::encode::{DeltaStats, EncodingStats, ModelEncoder, SearchOutcome};
use crate::input::AnalysisInput;
use crate::obs::{next_query_id, Obs, TraceEvent};
use crate::patch::{ModelPatch, PatchError};
use crate::spec::{Property, QueryLimits, ResiliencySpec};
use crate::threat::ThreatVector;

/// The outcome of a verification query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// `unsat`: no failure set within the budget violates the property.
    Resilient,
    /// `sat`: the returned (minimal) threat vector violates the property.
    Threat(ThreatVector),
    /// A resource limit stopped the query before a verdict. Soundness
    /// note: `Unknown` means *undecided* — the system may or may not be
    /// resilient — and is never reported as `Resilient`.
    Unknown {
        /// Solver conflicts spent across all attempts of this query.
        conflicts: u64,
        /// Wall-clock time spent on this query.
        elapsed: Duration,
    },
}

impl Verdict {
    /// Whether the system met the specification. `Unknown` is *not*
    /// resilient: an undecided query certifies nothing.
    pub fn is_resilient(&self) -> bool {
        matches!(self, Verdict::Resilient)
    }

    /// Whether the query ran out of resources before a verdict.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Verdict::Unknown { .. })
    }
}

/// A verification result with measurements, for the evaluation harness.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// The property verified.
    pub property: Property,
    /// The specification verified against.
    pub spec: ResiliencySpec,
    /// The outcome.
    pub verdict: Verdict,
    /// Wall-clock time of the query (encode-on-demand + all solve
    /// attempts).
    pub duration: Duration,
    /// Encoding sizes after the query.
    pub encoding: EncodingStats,
    /// Solver conflicts spent on this query (all attempts).
    pub conflicts: u64,
    /// Solve attempts performed (> 1 when the retry policy escalated an
    /// exhausted conflict budget).
    pub attempts: u32,
    /// Independent certificate for the verdict; `None` when the analyzer
    /// was built without certification (see [`Analyzer::with_options`]).
    pub certificate: Option<Certificate>,
}

/// The SCADA resiliency analyzer.
///
/// # Examples
///
/// ```
/// use scada_analyzer::casestudy::five_bus_case_study;
/// use scada_analyzer::{Analyzer, Property, ResiliencySpec};
///
/// let input = five_bus_case_study();
/// let mut analyzer = Analyzer::new(&input);
/// let verdict = analyzer.verify(Property::Observability, ResiliencySpec::split(1, 1));
/// assert!(verdict.is_resilient());
/// ```
///
/// Bounded queries degrade gracefully instead of hanging:
///
/// ```
/// use scada_analyzer::casestudy::five_bus_case_study;
/// use scada_analyzer::{Analyzer, Property, QueryLimits, ResiliencySpec, RetryPolicy};
///
/// let input = five_bus_case_study();
/// let mut analyzer = Analyzer::new(&input);
/// // A 1-conflict starting budget with ×2 escalation always reaches a
/// // definite verdict on the case study — without ever hanging.
/// let limits = QueryLimits::none()
///     .with_conflict_budget(1)
///     .with_retry(RetryPolicy::escalating(32));
/// let verdict = analyzer.verify_limited(
///     Property::Observability,
///     ResiliencySpec::split(2, 1),
///     &limits,
/// );
/// assert!(!verdict.is_unknown());
/// ```
#[derive(Debug)]
pub struct Analyzer<'a> {
    /// Borrowed for the common "verify this input" flow; promoted to an
    /// owned value the first time a patch rewrites the model in place
    /// (see [`Analyzer::apply_patch`]). [`Analyzer::owning`] starts
    /// owned, for sessions with no caller-side input to borrow from.
    input: Cow<'a, AnalysisInput>,
    encoder: ModelEncoder,
    evaluator: DirectEvaluator,
    obs: Obs,
    certify: CertifyOptions,
    cert: Option<CertSession>,
    /// Model patches applied so far (delta provenance).
    patches: u64,
}

impl<'a> Analyzer<'a> {
    /// Builds the analyzer (encodes the base model, enumerates paths).
    pub fn new(input: &'a AnalysisInput) -> Analyzer<'a> {
        Analyzer::with_obs(input, Obs::none())
    }

    /// Builds the analyzer with an observability handle: every query run
    /// through this analyzer emits trace events and metrics through
    /// `obs`. [`Obs::none`] makes this identical to [`Analyzer::new`].
    pub fn with_obs(input: &'a AnalysisInput, obs: Obs) -> Analyzer<'a> {
        Analyzer::with_options(input, obs, CertifyOptions::default())
    }

    /// Builds the analyzer with observability *and* certification. With
    /// `certify.enabled`, the solver mirrors every original clause and
    /// streams a DRAT proof, and each verdict is independently
    /// re-checked ([`crate::certify`]); the certificate lands on the
    /// [`VerificationReport`] and in `certify.log`.
    pub fn with_options(
        input: &'a AnalysisInput,
        obs: Obs,
        certify: CertifyOptions,
    ) -> Analyzer<'a> {
        Analyzer::build(Cow::Borrowed(input), obs, certify)
    }

    /// Builds an analyzer that owns its input outright. Long-lived
    /// sessions that mutate their model via [`Analyzer::apply_patch`]
    /// have no caller-side input to borrow from, so they start owned
    /// and the returned analyzer is `'static`.
    pub fn owning(input: AnalysisInput, obs: Obs, certify: CertifyOptions) -> Analyzer<'static> {
        Analyzer::build(Cow::Owned(input), obs, certify)
    }

    fn build(input: Cow<'a, AnalysisInput>, obs: Obs, certify: CertifyOptions) -> Analyzer<'a> {
        let (encoder, buffer) = ModelEncoder::new_certified(&input, certify.enabled);
        let cert = buffer.map(|b| CertSession::new(b, certify.clone()));
        Analyzer {
            encoder,
            evaluator: DirectEvaluator::new(&input),
            input,
            obs,
            certify,
            cert,
            patches: 0,
        }
    }

    /// The analyzer's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The input under analysis. The reference borrows the analyzer —
    /// after [`Analyzer::apply_patch`] the input is analyzer-owned, so
    /// it can no longer be handed out with the caller's lifetime.
    pub fn input(&self) -> &AnalysisInput {
        &self.input
    }

    /// The direct evaluator (reference semantics).
    pub fn evaluator(&self) -> &DirectEvaluator {
        &self.evaluator
    }

    /// Model patches applied to this analyzer so far.
    pub fn patches_applied(&self) -> u64 {
        self.patches
    }

    /// Applies a model delta to the warm session *in place*: no solver
    /// rebuild, no full re-encode, learned clauses survive.
    ///
    /// The patch is validated against the current input first; a
    /// rejected patch leaves the analyzer untouched. On success the
    /// encoder absorbs the delta ([`ModelEncoder::apply_delta`]): new
    /// model elements get fresh variables, retired devices are pinned
    /// available by unit clauses, and only the delivery cones whose
    /// path sets actually changed are re-encoded on the next query.
    ///
    /// When certification is active, the previous query's proof steps
    /// are flushed through the checker and to disk *before* the
    /// encoder mutates — a patch arriving while a proof is still
    /// buffered must wait on that flush, or the patch's clause
    /// additions would interleave into the prior query's proof file.
    pub fn apply_patch(&mut self, patch: &ModelPatch) -> Result<DeltaStats, PatchError> {
        let next = patch.apply(&self.input)?;
        if let Some(cert) = self.cert.as_mut() {
            cert.flush_patch_boundary(&self.encoder)
                .map_err(PatchError::internal)?;
        }
        // The input is swapped in last: if the delta encode panics, the
        // analyzer's input still names the model its solver encodes, so
        // a session worker can rebuild from it consistently.
        let stats = self.encoder.apply_delta(&next);
        self.evaluator = DirectEvaluator::new(&next);
        *self.input.to_mut() = next;
        self.patches += 1;
        self.obs.count("patches_applied", 1);
        self.obs.trace(|| TraceEvent::PatchApplied {
            patch: patch.to_string(),
            new_devices: stats.new_devices,
            new_links: stats.new_links,
            newly_pinned: stats.newly_pinned,
            plain_dirty: stats.plain_dirty,
            secured_dirty: stats.secured_dirty,
        });
        Ok(stats)
    }

    /// Mutable access to the symbolic model (threat enumeration adds
    /// blocking clauses through this).
    pub(crate) fn encoder_mut(&mut self) -> &mut ModelEncoder {
        &mut self.encoder
    }

    /// Arms the solver's resource limits for `attempt` and runs one
    /// violation search against the current input. Enumeration calls
    /// this instead of borrowing the input and encoder separately (the
    /// input is analyzer-owned once a patch has been applied).
    pub(crate) fn find_violation_armed(
        &mut self,
        limits: &QueryLimits,
        attempt: u32,
        property: Property,
        spec: ResiliencySpec,
    ) -> SearchOutcome {
        limits.arm(self.encoder.solver_mut(), attempt);
        self.encoder.find_violation(&self.input, property, spec)
    }

    /// Clears every piece of per-query solver state a previous request
    /// may have left armed: the wall-clock deadline, the conflict
    /// budget, the cooperative interrupt flag, and the progress hook.
    ///
    /// Long-lived analyzers (the `scadad` warm sessions) serve
    /// independent requests back to back; without this, a timed-out
    /// request's deadline would still be armed when the next request's
    /// solve starts and instantly abort it. Query entry points arm and
    /// disarm limits around each solve, but an *aborted* query — a
    /// panic unwound past the disarm — must not poison its successor.
    pub fn reset_for_query(&mut self) {
        let solver = self.encoder.solver_mut();
        QueryLimits::disarm(solver);
        solver.set_progress_hook(None);
    }

    /// Whether this query needs a globally unique id (trace correlation
    /// or per-query proof files).
    pub(crate) fn wants_query_ids(&self) -> bool {
        self.obs.has_tracer() || self.certify.wants_query_ids()
    }

    /// Certifies the verdict of the query that just finished, draining
    /// the mirror/proof deltas. Returns `None` when certification is
    /// disabled. `violation` carries the *full* (pre-minimization)
    /// failure sets extracted from the solver model on `sat` verdicts.
    pub(crate) fn certify_verdict(
        &mut self,
        query: u64,
        property: Property,
        spec: ResiliencySpec,
        verdict: &Verdict,
        violation: Option<(&HashSet<DeviceId>, &HashSet<usize>)>,
    ) -> Option<Certificate> {
        let session = self.cert.as_mut()?;
        Some(session.certify(
            &self.encoder,
            &self.evaluator,
            &self.input,
            query,
            property,
            spec,
            verdict,
            violation,
            &self.obs,
        ))
    }

    /// Verifies a property against a specification, running to a
    /// definite verdict (no resource limits).
    pub fn verify(&mut self, property: Property, spec: ResiliencySpec) -> Verdict {
        self.verify_with_report(property, spec).verdict
    }

    /// Verifies under resource limits; see [`QueryLimits`].
    pub fn verify_limited(
        &mut self,
        property: Property,
        spec: ResiliencySpec,
        limits: &QueryLimits,
    ) -> Verdict {
        self.verify_with_report_limited(property, spec, limits)
            .verdict
    }

    /// Verifies and returns timing/size measurements.
    pub fn verify_with_report(
        &mut self,
        property: Property,
        spec: ResiliencySpec,
    ) -> VerificationReport {
        self.verify_with_report_limited(property, spec, &QueryLimits::none())
    }

    /// Verifies under resource limits and returns timing/size
    /// measurements.
    ///
    /// A query stopped by its conflict budget is retried with a
    /// geometrically grown budget (`limits.retry`); a query stopped by
    /// its deadline or interrupt flag is not retried (those limits do
    /// not grow back). All solver limits are cleared afterwards, so
    /// later unlimited queries on the same analyzer are unaffected.
    pub fn verify_with_report_limited(
        &mut self,
        property: Property,
        spec: ResiliencySpec,
        limits: &QueryLimits,
    ) -> VerificationReport {
        let start = Instant::now();
        // Anchor the per-query timeout (if any) now, so every query of a
        // batch gets its own wall-clock allowance.
        let limits = limits.anchored(start);
        let conflicts_before = self.encoder.solver_stats().conflicts;
        let obs = self.obs.clone();
        // Query ids exist to correlate trace events and name per-query
        // proof files; otherwise the counter is never touched.
        let query = if self.wants_query_ids() {
            next_query_id()
        } else {
            0
        };
        obs.trace(|| TraceEvent::QueryStart {
            query,
            property,
            spec,
        });
        if obs.has_tracer() {
            // Surface long solve attempts as they run: the solver calls
            // this at every Luby restart.
            let progress_obs = obs.clone();
            self.encoder
                .solver_mut()
                .set_progress_hook(Some(Box::new(move |stats| {
                    progress_obs.trace(|| TraceEvent::SolveProgress {
                        query,
                        conflicts: stats.conflicts,
                        decisions: stats.decisions,
                        propagations: stats.propagations,
                        restarts: stats.restarts,
                    });
                })));
        }
        let mut attempts: u32 = 0;
        // The full (pre-minimization) failure sets of a sat verdict,
        // kept for certification.
        let mut full_violation: Option<(HashSet<DeviceId>, HashSet<usize>)> = None;
        let verdict = loop {
            limits.arm(self.encoder.solver_mut(), attempts);
            let attempt_start = Instant::now();
            let stats_before = self.encoder.solver_stats();
            let outcome = self.encoder.find_violation(&self.input, property, spec);
            attempts += 1;
            let delta = self.encoder.solver_stats().delta_since(&stats_before);
            obs.trace(|| TraceEvent::SolveAttempt {
                query,
                attempt: attempts - 1,
                outcome: match &outcome {
                    SearchOutcome::Resilient => "unsat",
                    SearchOutcome::Violation(_) => "sat",
                    SearchOutcome::Unknown => "unknown",
                },
                conflicts: delta.conflicts,
                decisions: delta.decisions,
                propagations: delta.propagations,
                restarts: delta.restarts,
                elapsed: attempt_start.elapsed(),
            });
            obs.count("solve_attempts", 1);
            obs.observe("attempt_conflicts", delta.conflicts);
            if attempts == 1 {
                // The model is built lazily inside the first solve, so
                // the sizes first exist here.
                let encoding = self.encoder.stats();
                obs.trace(|| TraceEvent::Encoded {
                    query,
                    variables: encoding.variables,
                    clauses: encoding.clauses,
                });
            }
            match outcome {
                SearchOutcome::Resilient => break Verdict::Resilient,
                SearchOutcome::Violation(violation) => {
                    let failed: HashSet<_> = violation.devices.into_iter().collect();
                    let failed_links: HashSet<usize> = violation.links.into_iter().collect();
                    debug_assert!(
                        self.evaluator.violates_full(
                            property,
                            spec.corrupted,
                            &failed,
                            &failed_links
                        ),
                        "solver threat not confirmed by direct evaluation"
                    );
                    let minimal = self.evaluator.minimize_full(
                        property,
                        spec.corrupted,
                        &failed,
                        &failed_links,
                    );
                    obs.trace(|| TraceEvent::Minimize {
                        query,
                        from: failed.len() + failed_links.len(),
                        to: minimal.len(),
                    });
                    full_violation = Some((failed, failed_links));
                    break Verdict::Threat(minimal);
                }
                SearchOutcome::Unknown => {
                    // Retrying helps only when the *conflict budget* ran
                    // out; an expired deadline or a raised interrupt will
                    // stop the next attempt just the same.
                    let retryable = limits.conflict_budget.is_some()
                        && attempts < limits.retry.attempts
                        && !limits.expired()
                        && !limits.interrupted();
                    if !retryable {
                        break Verdict::Unknown {
                            conflicts: self.encoder.solver_stats().conflicts - conflicts_before,
                            elapsed: start.elapsed(),
                        };
                    }
                    obs.count("retries", 1);
                    obs.trace(|| TraceEvent::Retry {
                        query,
                        attempt: attempts,
                        budget: limits
                            .retry
                            .budget_for(limits.conflict_budget.unwrap_or(0), attempts),
                    });
                }
            }
        };
        QueryLimits::disarm(self.encoder.solver_mut());
        if obs.has_tracer() {
            self.encoder.solver_mut().set_progress_hook(None);
        }
        let certificate = self.certify_verdict(
            query,
            property,
            spec,
            &verdict,
            full_violation.as_ref().map(|(d, l)| (d, l)),
        );
        let total_conflicts = self.encoder.solver_stats().conflicts - conflicts_before;
        obs.trace(|| TraceEvent::QueryDone {
            query,
            verdict: match &verdict {
                Verdict::Resilient => "resilient",
                Verdict::Threat(_) => "threat",
                Verdict::Unknown { .. } => "unknown",
            },
            attempts,
            conflicts: total_conflicts,
            elapsed: start.elapsed(),
        });
        obs.count("queries", 1);
        obs.count(
            match &verdict {
                Verdict::Resilient => "verdict_resilient",
                Verdict::Threat(_) => "verdict_threat",
                Verdict::Unknown { .. } => "verdict_unknown",
            },
            1,
        );
        obs.count("conflicts", total_conflicts);
        obs.observe_duration("query_us", start.elapsed());
        VerificationReport {
            property,
            spec,
            verdict,
            duration: start.elapsed(),
            encoding: self.encoder.stats(),
            conflicts: self.encoder.solver_stats().conflicts - conflicts_before,
            attempts,
            certificate,
        }
    }
}
