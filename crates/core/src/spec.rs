//! Properties and resiliency specifications.

use std::fmt;

/// The property whose resiliency is being verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Property {
    /// k-resilient observability (§III-C).
    Observability,
    /// k-resilient *secured* observability (§III-D): only measurements
    /// delivered over authenticated and integrity-protected hops count.
    SecuredObservability,
    /// (k, r)-resilient bad-data detectability (§III-E): every state must
    /// be covered by at least `r + 1` secured measurements.
    BadDataDetectability,
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Property::Observability => "observability",
            Property::SecuredObservability => "secured observability",
            Property::BadDataDetectability => "bad-data detectability",
        };
        f.write_str(s)
    }
}

/// How device failures are budgeted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureBudget {
    /// At most `k` field devices (IEDs and RTUs together) fail — the
    /// paper's `k`-resiliency.
    Total(usize),
    /// At most `k1` IEDs and `k2` RTUs fail — the paper's
    /// `(k1, k2)`-resiliency.
    Split {
        /// Maximum IED failures.
        ieds: usize,
        /// Maximum RTU failures.
        rtus: usize,
    },
}

impl fmt::Display for FailureBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureBudget::Total(k) => write!(f, "k={k}"),
            FailureBudget::Split { ieds, rtus } => write!(f, "(k1={ieds}, k2={rtus})"),
        }
    }
}

/// A resiliency specification: a failure budget plus (for bad-data
/// detectability) the number of simultaneously corrupted measurements.
///
/// # Examples
///
/// ```
/// use scada_analyzer::ResiliencySpec;
/// let spec = ResiliencySpec::split(1, 1).with_corrupted(1);
/// assert_eq!(spec.corrupted, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResiliencySpec {
    /// The failure budget.
    pub budget: FailureBudget,
    /// The paper's `r`: tolerated corrupted measurements (only used by
    /// [`Property::BadDataDetectability`]).
    pub corrupted: usize,
    /// Additional budget of *link* failures (cut wires / jammed media),
    /// an extension beyond the paper's device-only budgets; 0 keeps the
    /// paper's semantics.
    pub link_failures: usize,
}

impl ResiliencySpec {
    /// `k`-resiliency over all field devices.
    pub fn total(k: usize) -> ResiliencySpec {
        ResiliencySpec {
            budget: FailureBudget::Total(k),
            corrupted: 1,
            link_failures: 0,
        }
    }

    /// `(k1, k2)`-resiliency: separate IED and RTU budgets.
    pub fn split(ieds: usize, rtus: usize) -> ResiliencySpec {
        ResiliencySpec {
            budget: FailureBudget::Split { ieds, rtus },
            corrupted: 1,
            link_failures: 0,
        }
    }

    /// Sets `r` for bad-data detectability.
    pub fn with_corrupted(mut self, r: usize) -> ResiliencySpec {
        self.corrupted = r;
        self
    }

    /// Additionally tolerates up to `l` link failures.
    pub fn with_link_failures(mut self, l: usize) -> ResiliencySpec {
        self.link_failures = l;
        self
    }
}

impl fmt::Display for ResiliencySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}, r={}", self.budget, self.corrupted)?;
        if self.link_failures > 0 {
            write!(f, ", links={}", self.link_failures)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(ResiliencySpec::total(3).budget, FailureBudget::Total(3));
        assert_eq!(
            ResiliencySpec::split(1, 2).budget,
            FailureBudget::Split { ieds: 1, rtus: 2 }
        );
        assert_eq!(ResiliencySpec::split(0, 0).corrupted, 1);
        assert_eq!(ResiliencySpec::total(1).with_corrupted(2).corrupted, 2);
    }

    #[test]
    fn display() {
        assert_eq!(ResiliencySpec::split(2, 1).to_string(), "(k1=2, k2=1), r=1");
        assert_eq!(ResiliencySpec::total(4).to_string(), "k=4, r=1");
        assert_eq!(
            Property::SecuredObservability.to_string(),
            "secured observability"
        );
    }
}
