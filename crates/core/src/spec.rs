//! Properties, resiliency specifications, and per-query resource limits.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The property whose resiliency is being verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Property {
    /// k-resilient observability (§III-C).
    Observability,
    /// k-resilient *secured* observability (§III-D): only measurements
    /// delivered over authenticated and integrity-protected hops count.
    SecuredObservability,
    /// (k, r)-resilient bad-data detectability (§III-E): every state must
    /// be covered by at least `r + 1` secured measurements.
    BadDataDetectability,
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Property::Observability => "observability",
            Property::SecuredObservability => "secured observability",
            Property::BadDataDetectability => "bad-data detectability",
        };
        f.write_str(s)
    }
}

/// How device failures are budgeted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureBudget {
    /// At most `k` field devices (IEDs and RTUs together) fail — the
    /// paper's `k`-resiliency.
    Total(usize),
    /// At most `k1` IEDs and `k2` RTUs fail — the paper's
    /// `(k1, k2)`-resiliency.
    Split {
        /// Maximum IED failures.
        ieds: usize,
        /// Maximum RTU failures.
        rtus: usize,
    },
}

impl fmt::Display for FailureBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureBudget::Total(k) => write!(f, "k={k}"),
            FailureBudget::Split { ieds, rtus } => write!(f, "(k1={ieds}, k2={rtus})"),
        }
    }
}

/// A resiliency specification: a failure budget plus (for bad-data
/// detectability) the number of simultaneously corrupted measurements.
///
/// # Examples
///
/// ```
/// use scada_analyzer::ResiliencySpec;
/// let spec = ResiliencySpec::split(1, 1).with_corrupted(1);
/// assert_eq!(spec.corrupted, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResiliencySpec {
    /// The failure budget.
    pub budget: FailureBudget,
    /// The paper's `r`: tolerated corrupted measurements (only used by
    /// [`Property::BadDataDetectability`]).
    pub corrupted: usize,
    /// Additional budget of *link* failures (cut wires / jammed media),
    /// an extension beyond the paper's device-only budgets; 0 keeps the
    /// paper's semantics.
    pub link_failures: usize,
}

impl ResiliencySpec {
    /// `k`-resiliency over all field devices.
    pub fn total(k: usize) -> ResiliencySpec {
        ResiliencySpec {
            budget: FailureBudget::Total(k),
            corrupted: 1,
            link_failures: 0,
        }
    }

    /// `(k1, k2)`-resiliency: separate IED and RTU budgets.
    pub fn split(ieds: usize, rtus: usize) -> ResiliencySpec {
        ResiliencySpec {
            budget: FailureBudget::Split { ieds, rtus },
            corrupted: 1,
            link_failures: 0,
        }
    }

    /// Sets `r` for bad-data detectability.
    pub fn with_corrupted(mut self, r: usize) -> ResiliencySpec {
        self.corrupted = r;
        self
    }

    /// Additionally tolerates up to `l` link failures.
    pub fn with_link_failures(mut self, l: usize) -> ResiliencySpec {
        self.link_failures = l;
        self
    }
}

impl fmt::Display for ResiliencySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}, r={}", self.budget, self.corrupted)?;
        if self.link_failures > 0 {
            write!(f, ", links={}", self.link_failures)?;
        }
        Ok(())
    }
}

/// Escalation policy for queries stopped by their conflict budget.
///
/// The verification problems here are NP-hard; a query that exhausts its
/// budget returns `Unknown` rather than hanging. When a conflict budget
/// (not a deadline or interrupt) caused the `Unknown`, the analyzer may
/// retry with a geometrically grown budget — a Luby-style ×2 escalation —
/// up to `attempts` total attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total solve attempts (1 = no retry).
    pub attempts: u32,
    /// Budget multiplier applied on each retry (≥ 1; default 2).
    pub growth: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            growth: 2,
        }
    }
}

impl RetryPolicy {
    /// Up to `attempts` attempts with ×2 budget growth.
    pub fn escalating(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts: attempts.max(1),
            growth: 2,
        }
    }

    /// The conflict budget of attempt `attempt` (0-based) for a base
    /// budget, saturating on overflow.
    pub fn budget_for(&self, base: u64, attempt: u32) -> u64 {
        let factor = (self.growth.max(1) as u64).saturating_pow(attempt);
        base.saturating_mul(factor)
    }
}

/// Resource limits for verification queries: a wall-clock deadline, a
/// per-solve conflict budget with an escalating [`RetryPolicy`], and a
/// cooperative interrupt flag (used by the parallel fleet to cancel
/// in-flight sibling solves when one job fails).
///
/// An unlimited query ([`QueryLimits::none`]) can never come back
/// `Unknown`; with limits, `Unknown` is a first-class verdict and is
/// **never** conflated with `Resilient` (see DESIGN.md, "Degradation
/// semantics").
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use scada_analyzer::{QueryLimits, RetryPolicy};
///
/// let limits = QueryLimits::none()
///     .with_timeout(Duration::from_millis(100))
///     .with_conflict_budget(10_000)
///     .with_retry(RetryPolicy::escalating(3));
/// assert!(!limits.is_unbounded());
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryLimits {
    /// Hard wall-clock bound for the whole query (including retries).
    pub deadline: Option<Instant>,
    /// Per-query wall-clock allowance, anchored when each query starts —
    /// in a batch or sweep, every query gets its own deadline. Combines
    /// with `deadline` (whichever comes first wins).
    pub timeout: Option<Duration>,
    /// Base conflict budget per solve attempt.
    pub conflict_budget: Option<u64>,
    /// Escalation policy when the conflict budget is exhausted.
    pub retry: RetryPolicy,
    /// Cooperative cancellation flag shared with other threads.
    interrupt: Option<Arc<AtomicBool>>,
}

impl QueryLimits {
    /// No limits: queries run to a definite verdict.
    pub fn none() -> QueryLimits {
        QueryLimits::default()
    }

    /// Bounds each query to `timeout` of wall-clock time from its start.
    pub fn with_timeout(mut self, timeout: Duration) -> QueryLimits {
        self.timeout = Some(timeout);
        self
    }

    /// Bounds the query to finish by `deadline` (an absolute instant —
    /// a whole batch sharing these limits shares the deadline).
    pub fn with_deadline(mut self, deadline: Instant) -> QueryLimits {
        self.deadline = Some(deadline);
        self
    }

    /// These limits with the per-query `timeout` (if any) anchored at
    /// `start`, folded into the absolute deadline.
    pub(crate) fn anchored(&self, start: Instant) -> QueryLimits {
        let mut anchored = self.clone();
        if let Some(timeout) = anchored.timeout.take() {
            let per_query = start + timeout;
            anchored.deadline = Some(anchored.deadline.map_or(per_query, |d| d.min(per_query)));
        }
        anchored
    }

    /// Bounds each solve attempt to `conflicts` conflicts.
    pub fn with_conflict_budget(mut self, conflicts: u64) -> QueryLimits {
        self.conflict_budget = Some(conflicts);
        self
    }

    /// Sets the budget-escalation retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> QueryLimits {
        self.retry = retry;
        self
    }

    /// Installs a cooperative interrupt flag; raising it from another
    /// thread cancels in-flight solves with an `Unknown` verdict.
    pub fn with_interrupt(mut self, flag: Arc<AtomicBool>) -> QueryLimits {
        self.interrupt = Some(flag);
        self
    }

    /// Whether no limit of any kind is set.
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none()
            && self.timeout.is_none()
            && self.conflict_budget.is_none()
            && self.interrupt.is_none()
    }

    /// Whether the deadline (if any) has passed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether the interrupt flag (if any) is raised.
    pub fn interrupted(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Whether an interrupt flag is installed.
    pub fn has_interrupt(&self) -> bool {
        self.interrupt.is_some()
    }

    /// Arms `solver` for solve attempt `attempt` (0-based) under these
    /// limits. [`crate::Analyzer`] clears the solver again after the
    /// query so unlimited queries on the same incremental session are
    /// unaffected.
    pub(crate) fn arm(&self, solver: &mut satcore::Solver, attempt: u32) {
        solver.set_conflict_budget(
            self.conflict_budget
                .map(|base| self.retry.budget_for(base, attempt)),
        );
        solver.set_deadline(self.deadline);
        solver.set_interrupt(self.interrupt.clone());
    }

    /// Removes all limits from `solver`.
    pub(crate) fn disarm(solver: &mut satcore::Solver) {
        solver.set_conflict_budget(None);
        solver.set_deadline(None);
        solver.set_interrupt(None);
    }
}

/// Parses a human-friendly duration: `150ms`, `5s`, `2m`, or a bare
/// number of seconds (`5`). Used by the CLI `--timeout` flags.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use scada_analyzer::parse_duration;
///
/// assert_eq!(parse_duration("150ms"), Some(Duration::from_millis(150)));
/// assert_eq!(parse_duration("5s"), Some(Duration::from_secs(5)));
/// assert_eq!(parse_duration("2m"), Some(Duration::from_secs(120)));
/// assert_eq!(parse_duration("7"), Some(Duration::from_secs(7)));
/// assert_eq!(parse_duration("fast"), None);
/// ```
pub fn parse_duration(s: &str) -> Option<Duration> {
    let s = s.trim();
    let (digits, unit) = match s.find(|c: char| !c.is_ascii_digit()) {
        Some(i) => s.split_at(i),
        None => (s, ""),
    };
    let value: u64 = digits.parse().ok()?;
    match unit {
        "ms" => Some(Duration::from_millis(value)),
        "s" | "" => Some(Duration::from_secs(value)),
        "m" => Some(Duration::from_secs(value.checked_mul(60)?)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(ResiliencySpec::total(3).budget, FailureBudget::Total(3));
        assert_eq!(
            ResiliencySpec::split(1, 2).budget,
            FailureBudget::Split { ieds: 1, rtus: 2 }
        );
        assert_eq!(ResiliencySpec::split(0, 0).corrupted, 1);
        assert_eq!(ResiliencySpec::total(1).with_corrupted(2).corrupted, 2);
    }

    #[test]
    fn display() {
        assert_eq!(ResiliencySpec::split(2, 1).to_string(), "(k1=2, k2=1), r=1");
        assert_eq!(ResiliencySpec::total(4).to_string(), "k=4, r=1");
        assert_eq!(
            Property::SecuredObservability.to_string(),
            "secured observability"
        );
    }
}
