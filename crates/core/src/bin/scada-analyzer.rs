//! The SCADA Analyzer command-line tool (the paper's Fig 2 pipeline).
//!
//! ```text
//! scada-analyzer <config.scada> [options]
//!
//! options:
//!   --property obs|secured|baddata   property to verify (default: from all three)
//!   --k N            total failure budget (overrides the config's spec)
//!   --k1 N --k2 N    split IED/RTU budgets
//!   --r N            corrupted-measurement tolerance (bad data)
//!   --links N        additional link-failure budget
//!   --enumerate      list every minimal threat vector
//!   --rank           rank devices by threat-vector participation
//!   --max-resiliency print the maximum tolerated failures per axis
//!   --repair         synthesize minimal security upgrades (secured/baddata)
//!   --jobs N         verification worker threads (0 = all cores, default)
//!   --timeout DUR    wall-clock limit per query, e.g. 150ms, 5s, 2m
//!   --conflict-budget N  solver conflicts per query (escalating ×2 retry)
//!   --template       print an example configuration and exit
//! ```
//!
//! Property verification and the `--max-resiliency` sweeps run on the
//! parallel engine; `--jobs 1` forces the serial baseline and produces
//! identical output.
//!
//! With `--timeout` / `--conflict-budget` a query that runs out of
//! resources prints `UNKNOWN` instead of hanging. Exit codes: 0 all
//! verified resilient, 1 some threat found, 2 usage error, 3 no threat
//! but at least one query undecided.

use std::process::ExitCode;

use scada_analyzer::synthesis::{synthesize_upgrades, SynthesisOptions, SynthesisResult};
use scada_analyzer::{
    enumerate_threats, par_max_resiliency_limited, parse_duration, verify_batch_limited,
    AnalysisInput, BudgetAxis, Property, QueryLimits, ResiliencySpec, RetryPolicy, Verdict,
};
use scadasim::parse_config;

const TEMPLATE: &str = "\
# SCADA Analyzer configuration (all ids are 1-based)
[buses]
3
[lines]
1 2 10.0
2 3 5.0
[measurements]
flow 1 2
flow 2 3
injection 2
[devices]
ied 1
ied 2
rtu 3
mtu 4
[links]
1 3
2 3
3 4
[ied-measurements]
1 1 3
2 2
[security]
1 3 chap 64 sha2 128
2 3 hmac 128
3 4 rsa 2048 aes 256
[spec]
resilience 1 0
corrupted 1
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--template") {
        print!("{TEMPLATE}");
        return ExitCode::SUCCESS;
    }
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: scada-analyzer <config-file> [options]   (--template for an example)");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = match parse_config(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let opt = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let flag = |name: &str| args.iter().any(|a| a == name);

    // Specification: config file values, overridable from the CLI.
    let (mut k1, mut k2) = config.resilience;
    let mut r = config.corrupted;
    let mut spec = if let Some(k) = opt("--k") {
        ResiliencySpec::total(k)
    } else {
        if let Some(v) = opt("--k1") {
            k1 = v;
        }
        if let Some(v) = opt("--k2") {
            k2 = v;
        }
        ResiliencySpec::split(k1, k2)
    };
    if let Some(v) = opt("--r") {
        r = v;
    }
    spec = spec.with_corrupted(r);
    spec = spec.with_link_failures(opt("--links").unwrap_or(config.link_failures));
    let jobs = opt("--jobs").unwrap_or(0);

    // Resource limits: a bounded query degrades to UNKNOWN, never hangs.
    let raw = |name: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let mut limits = QueryLimits::none();
    if let Some(v) = raw("--timeout") {
        let Some(timeout) = parse_duration(v) else {
            eprintln!("error: bad --timeout `{v}` (use e.g. 150ms, 5s, 2m)");
            return ExitCode::from(2);
        };
        limits = limits.with_timeout(timeout);
    }
    if let Some(v) = raw("--conflict-budget") {
        let Ok(budget) = v.parse::<u64>() else {
            eprintln!("error: bad --conflict-budget `{v}` (expected a number)");
            return ExitCode::from(2);
        };
        limits = limits
            .with_conflict_budget(budget)
            .with_retry(RetryPolicy::escalating(4));
    }

    let properties: Vec<Property> = match args
        .iter()
        .position(|a| a == "--property")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
    {
        Some("obs") | Some("observability") => vec![Property::Observability],
        Some("secured") => vec![Property::SecuredObservability],
        Some("baddata") => vec![Property::BadDataDetectability],
        Some(other) => {
            eprintln!("error: unknown property `{other}` (obs|secured|baddata)");
            return ExitCode::from(2);
        }
        None => vec![
            Property::Observability,
            Property::SecuredObservability,
            Property::BadDataDetectability,
        ],
    };

    let input = AnalysisInput::from(config);
    println!(
        "system: {} buses, {} measurements; {} IEDs, {} RTUs, {} links; spec: {spec}",
        input.measurements.num_states(),
        input.measurements.len(),
        input.topology.ieds().count(),
        input.topology.rtus().count(),
        input.topology.links().len(),
    );

    let mut any_threat = false;
    let mut any_unknown = false;
    let queries: Vec<(Property, ResiliencySpec)> = properties.iter().map(|&p| (p, spec)).collect();
    let reports = verify_batch_limited(&input, &queries, jobs, &limits);
    for (&property, report) in properties.iter().zip(&reports) {
        match &report.verdict {
            Verdict::Resilient => {
                println!("[{property}] RESILIENT at {spec}  ({:?})", report.duration);
            }
            Verdict::Threat(v) => {
                any_threat = true;
                println!("[{property}] THREAT {v} at {spec}  ({:?})", report.duration);
            }
            Verdict::Unknown { conflicts, elapsed } => {
                any_unknown = true;
                println!(
                    "[{property}] UNKNOWN at {spec}  (limit exhausted after \
                     {conflicts} conflicts, {} attempt(s), {elapsed:?})",
                    report.attempts
                );
            }
        }

        if flag("--enumerate") || flag("--rank") {
            let space = enumerate_threats(&input, property, spec, 1000);
            println!(
                "  threat space: {} minimal vector(s){}",
                space.len(),
                if space.truncated { " (truncated)" } else { "" }
            );
            if flag("--enumerate") {
                for v in &space.vectors {
                    println!("    {v}");
                }
            }
            if flag("--rank") && !space.is_empty() {
                println!("  device criticality (vectors participated in):");
                for (d, count) in space.criticality_ranking() {
                    let kind = input.topology.device(d).kind();
                    println!("    {kind} {:>3}  {count}", d.one_based());
                }
            }
        }

        if flag("--max-resiliency") {
            let fmt = |m: Option<usize>| m.map_or("none".to_string(), |k| k.to_string());
            let ied = par_max_resiliency_limited(
                &input,
                property,
                BudgetAxis::IedsOnly,
                r,
                jobs,
                &limits,
            );
            let rtu = par_max_resiliency_limited(
                &input,
                property,
                BudgetAxis::RtusOnly,
                r,
                jobs,
                &limits,
            );
            let total =
                par_max_resiliency_limited(&input, property, BudgetAxis::Total, r, jobs, &limits);
            println!(
                "  max resiliency: IEDs-only {}, RTUs-only {}, total {}",
                fmt(ied),
                fmt(rtu),
                fmt(total)
            );
        }

        if flag("--repair") && property != Property::Observability {
            match synthesize_upgrades(&input, property, spec, &SynthesisOptions::default()) {
                SynthesisResult::AlreadyResilient => {
                    println!("  repair: nothing to do");
                }
                SynthesisResult::Upgrades(upgrades) => {
                    let rendered: Vec<String> = upgrades
                        .iter()
                        .map(|(a, b)| format!("{}-{}", a.one_based(), b.one_based()))
                        .collect();
                    println!(
                        "  repair: upgrade hop(s) {} to an authenticated+integrity suite",
                        rendered.join(", ")
                    );
                }
                SynthesisResult::Infeasible => {
                    println!(
                        "  repair: infeasible — the weakness is topological, \
                         not cryptographic"
                    );
                }
            }
        }
    }

    if any_threat {
        ExitCode::FAILURE
    } else if any_unknown {
        // No threat found, but not everything was decided either.
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}
