//! The SCADA Analyzer command-line tool (the paper's Fig 2 pipeline).
//!
//! ```text
//! scada-analyzer <config.scada> [options]
//! scada-analyzer --case-study [options]
//!
//! options:
//!   --property obs|secured|baddata   property to verify (default: from all three)
//!   --k N            total failure budget (overrides the config's spec)
//!   --k1 N --k2 N    split IED/RTU budgets
//!   --r N            corrupted-measurement tolerance (bad data)
//!   --links N        additional link-failure budget
//!   --enumerate      list every minimal threat vector
//!   --rank           rank devices by threat-vector participation
//!   --max-resiliency print the maximum tolerated failures per axis
//!   --repair         synthesize minimal security upgrades (secured/baddata)
//!   --jobs N         verification worker threads (0 = all cores, default)
//!   --timeout DUR    wall-clock limit per query, e.g. 150ms, 5s, 2m
//!   --conflict-budget N  solver conflicts per query (escalating ×2 retry)
//!   --certify        independently re-check every verdict (DRAT proof
//!                    replay for unsat, model + budget + semantic
//!                    re-check for sat)
//!   --proof-dir DIR  also write each query's DRAT proof to
//!                    DIR/query-<id>.drat (implies --certify)
//!   --case-study     analyze the embedded 5-bus case study (no config)
//!   --trace PATH     write a structured JSONL event trace to PATH
//!   --stats          print a metrics summary table after the run
//!   --template       print an example configuration and exit
//! ```
//!
//! Property verification and the `--max-resiliency` sweeps run on the
//! parallel engine; `--jobs 1` forces the serial baseline and produces
//! identical output.
//!
//! With `--timeout` / `--conflict-budget` a query that runs out of
//! resources prints `UNKNOWN` instead of hanging; the limits also bound
//! `--enumerate`, whose threat space is then reported *undecided* when a
//! search was cut short. Exit codes: 0 all verified resilient, 1 some
//! threat found, 2 usage error (including malformed option values),
//! 3 no threat but at least one query or enumeration undecided, 4 a
//! `--certify` check failed (takes precedence over every other code —
//! an uncertified verdict is worse than a threat).

use std::process::ExitCode;
use std::sync::Arc;

use scada_analyzer::synthesis::{synthesize_upgrades_certified, SynthesisOptions, SynthesisResult};
use scada_analyzer::{
    enumerate_threats_with_limited, par_max_resiliency_certified, parse_duration,
    verify_batch_certified, AnalysisInput, Analyzer, BudgetAxis, CertFault, Certificate,
    CertifyOptions, JsonlTracer, MetricsRegistry, Obs, Property, QueryLimits, ResiliencySpec,
    RetryPolicy, Verdict,
};
use scadasim::parse_config;

const TEMPLATE: &str = "\
# SCADA Analyzer configuration (all ids are 1-based)
[buses]
3
[lines]
1 2 10.0
2 3 5.0
[measurements]
flow 1 2
flow 2 3
injection 2
[devices]
ied 1
ied 2
rtu 3
mtu 4
[links]
1 3
2 3
3 4
[ied-measurements]
1 1 3
2 2
[security]
1 3 chap 64 sha2 128
2 3 hmac 128
3 4 rsa 2048 aes 256
[spec]
resilience 1 0
corrupted 1
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(usage) => {
            eprintln!("error: {usage}");
            ExitCode::from(2)
        }
    }
}

/// The value following option `name`, if the option is present.
///
/// # Errors
///
/// The option being present without a value is a usage error.
fn raw<'a>(args: &'a [String], name: &str) -> Result<Option<&'a String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v)),
            None => Err(format!("{name} requires a value")),
        },
    }
}

/// A numeric option. Malformed values are usage errors, not silent
/// fallbacks to the default.
fn opt<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match raw(args, name)? {
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("bad {name} `{v}` (expected a number)")),
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.iter().any(|a| a == "--template") {
        print!("{TEMPLATE}");
        return Ok(ExitCode::SUCCESS);
    }
    let flag = |name: &str| args.iter().any(|a| a == name);
    let config = if flag("--case-study") {
        None
    } else {
        let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
            return Err("usage: scada-analyzer <config-file> [options]   \
                        (--template for an example, --case-study for the built-in system)"
                .to_string());
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return Ok(ExitCode::FAILURE);
            }
        };
        match parse_config(&text) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("error: {e}");
                return Ok(ExitCode::FAILURE);
            }
        }
    };

    // Specification: config file values, overridable from the CLI.
    let (mut k1, mut k2) = config.as_ref().map_or((1, 1), |c| c.resilience);
    let mut r = config.as_ref().map_or(1, |c| c.corrupted);
    let config_link_failures = config.as_ref().map_or(0, |c| c.link_failures);
    let mut spec = if let Some(k) = opt(args, "--k")? {
        ResiliencySpec::total(k)
    } else {
        if let Some(v) = opt(args, "--k1")? {
            k1 = v;
        }
        if let Some(v) = opt(args, "--k2")? {
            k2 = v;
        }
        ResiliencySpec::split(k1, k2)
    };
    if let Some(v) = opt(args, "--r")? {
        r = v;
    }
    spec = spec.with_corrupted(r);
    spec = spec.with_link_failures(opt(args, "--links")?.unwrap_or(config_link_failures));
    let jobs = opt(args, "--jobs")?.unwrap_or(0);

    // Resource limits: a bounded query degrades to UNKNOWN, never hangs.
    let mut limits = QueryLimits::none();
    if let Some(v) = raw(args, "--timeout")? {
        let Some(timeout) = parse_duration(v) else {
            return Err(format!("bad --timeout `{v}` (use e.g. 150ms, 5s, 2m)"));
        };
        limits = limits.with_timeout(timeout);
    }
    if let Some(budget) = opt::<u64>(args, "--conflict-budget")? {
        limits = limits
            .with_conflict_budget(budget)
            .with_retry(RetryPolicy::escalating(4));
    }

    // Certification: every verdict re-checked by the independent
    // model/proof checkers; failures flip the exit code to 4.
    let mut certify = CertifyOptions {
        enabled: flag("--certify"),
        ..CertifyOptions::default()
    };
    if let Some(dir) = raw(args, "--proof-dir")? {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create proof dir {}: {e}", dir.display()))?;
        certify.proof_dir = Some(dir);
        certify.enabled = true;
    }
    // Test hook: deliberately corrupt artifacts before checking, to
    // prove the checkers are not vacuous (see tests/degradation.rs).
    match std::env::var("SCADA_CERTIFY_FAULT").ok().as_deref() {
        Some("proof") => certify.fault = Some(CertFault::CorruptProof),
        Some("model") => certify.fault = Some(CertFault::CorruptModel),
        Some(other) if !other.is_empty() => {
            return Err(format!("bad SCADA_CERTIFY_FAULT `{other}` (proof|model)"));
        }
        _ => {}
    }

    // Observability: a JSONL trace sink and/or an in-memory metrics
    // registry. Both default to off — the analyzer then pays nothing.
    let mut obs = Obs::none();
    let mut tracer: Option<Arc<JsonlTracer>> = None;
    if let Some(trace_path) = raw(args, "--trace")? {
        let sink = JsonlTracer::to_file(std::path::Path::new(trace_path))
            .map_err(|e| format!("cannot create trace file {trace_path}: {e}"))?;
        let sink = Arc::new(sink);
        tracer = Some(sink.clone());
        obs = obs.with_tracer(sink);
    }
    let mut metrics: Option<Arc<MetricsRegistry>> = None;
    if flag("--stats") {
        let registry = Arc::new(MetricsRegistry::new());
        metrics = Some(registry.clone());
        obs = obs.with_metrics(registry);
    }

    let properties: Vec<Property> = match raw(args, "--property")?.map(|s| s.as_str()) {
        Some("obs") | Some("observability") => vec![Property::Observability],
        Some("secured") => vec![Property::SecuredObservability],
        Some("baddata") => vec![Property::BadDataDetectability],
        Some(other) => {
            return Err(format!("unknown property `{other}` (obs|secured|baddata)"));
        }
        None => vec![
            Property::Observability,
            Property::SecuredObservability,
            Property::BadDataDetectability,
        ],
    };

    let input = match config {
        Some(config) => AnalysisInput::from(config),
        None => scada_analyzer::casestudy::five_bus_case_study(),
    };
    println!(
        "system: {} buses, {} measurements; {} IEDs, {} RTUs, {} links; spec: {spec}",
        input.measurements.num_states(),
        input.measurements.len(),
        input.topology.ieds().count(),
        input.topology.rtus().count(),
        input.topology.links().len(),
    );

    let mut any_threat = false;
    let mut any_unknown = false;
    let queries: Vec<(Property, ResiliencySpec)> = properties.iter().map(|&p| (p, spec)).collect();
    let reports = verify_batch_certified(&input, &queries, jobs, &limits, &obs, &certify);
    for (&property, report) in properties.iter().zip(&reports) {
        match &report.verdict {
            Verdict::Resilient => {
                println!("[{property}] RESILIENT at {spec}  ({:?})", report.duration);
            }
            Verdict::Threat(v) => {
                any_threat = true;
                println!("[{property}] THREAT {v} at {spec}  ({:?})", report.duration);
            }
            Verdict::Unknown { conflicts, elapsed } => {
                any_unknown = true;
                println!(
                    "[{property}] UNKNOWN at {spec}  (limit exhausted after \
                     {conflicts} conflicts, {} attempt(s), {elapsed:?})",
                    report.attempts
                );
            }
        }
        match &report.certificate {
            Some(Certificate::Proof {
                steps,
                propagations,
                elapsed,
            }) => println!(
                "  certificate: unsat proof checked \
                 ({steps} steps, {propagations} propagations, {elapsed:?})"
            ),
            Some(Certificate::Threat { steps, elapsed }) => println!(
                "  certificate: model + budget + violation re-checked \
                 ({steps} proof steps replayed, {elapsed:?})"
            ),
            Some(Certificate::Unchecked) => {
                println!("  certificate: none (unknown verdicts certify nothing)")
            }
            Some(Certificate::Failed { reason }) => {
                println!("  certificate: FAILED — {reason}")
            }
            None => {}
        }

        if flag("--enumerate") || flag("--rank") {
            // Enumeration honours the same limits as verification: a
            // bounded run terminates and reports an undecided space
            // instead of hanging.
            let mut enum_analyzer = Analyzer::with_options(&input, obs.clone(), certify.clone());
            let space =
                enumerate_threats_with_limited(&mut enum_analyzer, property, spec, 1000, &limits);
            if space.undecided {
                any_unknown = true;
            }
            println!(
                "  threat space: {} minimal vector(s){}",
                space.len(),
                if space.undecided {
                    " (undecided: limit exhausted)"
                } else if space.truncated {
                    " (truncated)"
                } else {
                    ""
                }
            );
            if flag("--enumerate") {
                for v in &space.vectors {
                    println!("    {v}");
                }
            }
            if flag("--rank") && !space.is_empty() {
                println!("  device criticality (vectors participated in):");
                for (d, count) in space.criticality_ranking() {
                    let kind = input.topology.device(d).kind();
                    println!("    {kind} {:>3}  {count}", d.one_based());
                }
            }
        }

        if flag("--max-resiliency") {
            let fmt = |m: Option<usize>| m.map_or("none".to_string(), |k| k.to_string());
            let ied = par_max_resiliency_certified(
                &input,
                property,
                BudgetAxis::IedsOnly,
                r,
                jobs,
                &limits,
                &obs,
                &certify,
            );
            let rtu = par_max_resiliency_certified(
                &input,
                property,
                BudgetAxis::RtusOnly,
                r,
                jobs,
                &limits,
                &obs,
                &certify,
            );
            let total = par_max_resiliency_certified(
                &input,
                property,
                BudgetAxis::Total,
                r,
                jobs,
                &limits,
                &obs,
                &certify,
            );
            println!(
                "  max resiliency: IEDs-only {}, RTUs-only {}, total {}",
                fmt(ied),
                fmt(rtu),
                fmt(total)
            );
        }

        if flag("--repair") && property != Property::Observability {
            match synthesize_upgrades_certified(
                &input,
                property,
                spec,
                &SynthesisOptions::default(),
                &obs,
                &certify,
            ) {
                SynthesisResult::AlreadyResilient => {
                    println!("  repair: nothing to do");
                }
                SynthesisResult::Upgrades(upgrades) => {
                    let rendered: Vec<String> = upgrades
                        .iter()
                        .map(|(a, b)| format!("{}-{}", a.one_based(), b.one_based()))
                        .collect();
                    println!(
                        "  repair: upgrade hop(s) {} to an authenticated+integrity suite",
                        rendered.join(", ")
                    );
                }
                SynthesisResult::Infeasible => {
                    println!(
                        "  repair: infeasible — the weakness is topological, \
                         not cryptographic"
                    );
                }
            }
        }
    }

    if let Some(tracer) = &tracer {
        tracer.flush();
        eprintln!("trace: {} event(s) written", tracer.events());
    }
    if let Some(metrics) = &metrics {
        println!();
        print!("{}", metrics.render());
    }

    if certify.enabled {
        println!(
            "certification: {} verdict(s) checked, {} failure(s)",
            certify.log.checks(),
            certify.log.failures()
        );
    }
    Ok(if certify.log.failures() > 0 {
        // An uncertified verdict outranks every other outcome: the
        // pipeline's own answer could not be validated.
        if let Some(reason) = certify.log.first_failure() {
            eprintln!("error: certification failed: {reason}");
        }
        ExitCode::from(4)
    } else if any_threat {
        ExitCode::FAILURE
    } else if any_unknown {
        // No threat found, but not everything was decided either.
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    })
}
