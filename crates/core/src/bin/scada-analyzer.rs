//! The SCADA Analyzer command-line tool (the paper's Fig 2 pipeline).
//!
//! ```text
//! scada-analyzer <config.scada> [options]
//! scada-analyzer --case-study [options]
//!
//! options:
//!   --property obs|secured|baddata   property to verify (default: from all three)
//!   --k N            total failure budget (overrides the config's spec)
//!   --k1 N --k2 N    split IED/RTU budgets
//!   --r N            corrupted-measurement tolerance (bad data)
//!   --links N        additional link-failure budget
//!   --enumerate      list every minimal threat vector
//!   --rank           rank devices by threat-vector participation
//!   --max-resiliency print the maximum tolerated failures per axis
//!   --security-index print each measurement's security index α (the
//!                    cost of the sparsest undetectable attack touching
//!                    it), with a distribution histogram
//!   --repair         synthesize minimal security upgrades (secured/baddata)
//!   --jobs N         verification worker threads (0 = all cores, default)
//!   --timeout DUR    wall-clock limit per query, e.g. 150ms, 5s, 2m
//!   --conflict-budget N  solver conflicts per query (escalating ×2 retry)
//!   --certify        independently re-check every verdict (DRAT proof
//!                    replay for unsat, model + budget + semantic
//!                    re-check for sat)
//!   --proof-dir DIR  also write each query's DRAT proof to
//!                    DIR/query-<id>.drat (implies --certify)
//!   --case-study     analyze the embedded 5-bus case study (no config)
//!   --trace PATH     write a structured JSONL event trace to PATH
//!   --stats          print a metrics summary table after the run
//!   --template       print an example configuration and exit
//!   --batch DIR      audit a whole fleet of channel-directory configs:
//!                    import every subdirectory of DIR, cluster
//!                    near-duplicates, reach each variant from its
//!                    cluster base via model patches (delta/cached
//!                    provenance instead of cold builds), and print one
//!                    consolidated report row per config; a malformed
//!                    config becomes an `error` row, never an abort.
//!                    With --connect, runs server-side as the `batch`
//!                    op: DIR resolves under the service's
//!                    --fleet-root (relative, no `..`), --jobs is
//!                    forwarded to the service, and --format is
//!                    rendered client-side from the returned rows
//!   --format FMT     --batch report format: jsonl (default) or csv
//!   --connect ADDR   run as a client of a `scadad` service instead of
//!                    analyzing locally: load the model, then issue the
//!                    selected queries over the wire (responses carry
//!                    cold/warm/cached provenance)
//!   --patch JSON     with --connect: apply a model patch to the warm
//!                    session before querying (repeatable, applied in
//!                    order), e.g. --patch '{"remove_device":7}' or
//!                    --patch '{"add_device":{"kind":"rtu","peers":[1,4]}}';
//!                    queries then run against the patched model and
//!                    carry `delta` provenance
//!   --shutdown       with --connect: ask the service to drain and exit
//!                    (alone, or after the queries)
//!   --health         with --connect: print the service's health line —
//!                    `recovering|ready|draining` plus journal and
//!                    recovery counters (alone, or after the queries)
//! ```
//!
//! Property verification and the `--max-resiliency` sweeps run on the
//! parallel engine; `--jobs 1` forces the serial baseline and produces
//! identical output.
//!
//! With `--timeout` / `--conflict-budget` a query that runs out of
//! resources prints `UNKNOWN` instead of hanging; the limits also bound
//! `--enumerate`, whose threat space is then reported *undecided* when a
//! search was cut short. Exit codes: 0 all verified resilient, 1 some
//! threat found, 2 usage error (including malformed option values),
//! 3 no threat but at least one query or enumeration undecided, 4 a
//! `--certify` check failed (takes precedence over every other code —
//! an uncertified verdict is worse than a threat), 6 (`--batch` only)
//! at least one config failed to import or execute while the rest of
//! the fleet was audited. Precedence: 4 > 6 > 1 > 3 > 0.

use std::process::ExitCode;
use std::sync::Arc;

use scada_analyzer::obs::json_escape_into;
use scada_analyzer::service::{parse_json, Json};
use scada_analyzer::synthesis::{synthesize_upgrades_certified, SynthesisOptions, SynthesisResult};
use scada_analyzer::{
    enumerate_threats_with_limited, par_max_resiliency_certified, parse_duration,
    verify_batch_certified, AnalysisInput, Analyzer, BudgetAxis, CertFault, Certificate,
    CertifyOptions, JsonlTracer, MetricsRegistry, Obs, Property, QueryLimits, ResiliencySpec,
    RetryPolicy, Verdict,
};
use scadasim::parse_config;

const TEMPLATE: &str = "\
# SCADA Analyzer configuration (all ids are 1-based)
[buses]
3
[lines]
1 2 10.0
2 3 5.0
[measurements]
flow 1 2
flow 2 3
injection 2
[devices]
ied 1
ied 2
rtu 3
mtu 4
[links]
1 3
2 3
3 4
[ied-measurements]
1 1 3
2 2
[security]
1 3 chap 64 sha2 128
2 3 hmac 128
3 4 rsa 2048 aes 256
[spec]
resilience 1 0
corrupted 1
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(usage) => {
            eprintln!("error: {usage}");
            ExitCode::from(2)
        }
    }
}

/// The value following option `name`, if the option is present.
///
/// # Errors
///
/// The option being present without a value is a usage error.
fn raw<'a>(args: &'a [String], name: &str) -> Result<Option<&'a String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v)),
            None => Err(format!("{name} requires a value")),
        },
    }
}

/// Every value of a repeatable option, in the order given.
///
/// # Errors
///
/// Any occurrence without a value is a usage error.
fn raw_all<'a>(args: &'a [String], name: &str) -> Result<Vec<&'a String>, String> {
    let mut values = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == name {
            match args.get(i + 1) {
                Some(v) => values.push(v),
                None => return Err(format!("{name} requires a value")),
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(values)
}

/// A numeric option. Malformed values are usage errors, not silent
/// fallbacks to the default.
fn opt<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match raw(args, name)? {
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("bad {name} `{v}` (expected a number)")),
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.iter().any(|a| a == "--template") {
        print!("{TEMPLATE}");
        return Ok(ExitCode::SUCCESS);
    }
    if let Some(addr) = raw(args, "--connect")? {
        return run_client(addr, args);
    }
    let flag = |name: &str| args.iter().any(|a| a == name);
    if flag("--patch") {
        return Err(
            "--patch requires --connect (patches mutate a warm service session; \
                    local runs re-encode from the config anyway)"
                .to_string(),
        );
    }
    if let Some(dir) = raw(args, "--batch")? {
        return run_batch_local(dir, args);
    }
    let config = if flag("--case-study") {
        None
    } else {
        let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
            return Err("usage: scada-analyzer <config-file> [options]   \
                        (--template for an example, --case-study for the built-in system)"
                .to_string());
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return Ok(ExitCode::FAILURE);
            }
        };
        match parse_config(&text) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("error: {e}");
                return Ok(ExitCode::FAILURE);
            }
        }
    };

    // Specification: config file values, overridable from the CLI.
    let (mut k1, mut k2) = config.as_ref().map_or((1, 1), |c| c.resilience);
    let mut r = config.as_ref().map_or(1, |c| c.corrupted);
    let config_link_failures = config.as_ref().map_or(0, |c| c.link_failures);
    let mut spec = if let Some(k) = opt(args, "--k")? {
        ResiliencySpec::total(k)
    } else {
        if let Some(v) = opt(args, "--k1")? {
            k1 = v;
        }
        if let Some(v) = opt(args, "--k2")? {
            k2 = v;
        }
        ResiliencySpec::split(k1, k2)
    };
    if let Some(v) = opt(args, "--r")? {
        r = v;
    }
    spec = spec.with_corrupted(r);
    spec = spec.with_link_failures(opt(args, "--links")?.unwrap_or(config_link_failures));
    let jobs = opt(args, "--jobs")?.unwrap_or(0);

    // Resource limits: a bounded query degrades to UNKNOWN, never hangs.
    let mut limits = QueryLimits::none();
    if let Some(v) = raw(args, "--timeout")? {
        let Some(timeout) = parse_duration(v) else {
            return Err(format!("bad --timeout `{v}` (use e.g. 150ms, 5s, 2m)"));
        };
        limits = limits.with_timeout(timeout);
    }
    if let Some(budget) = opt::<u64>(args, "--conflict-budget")? {
        limits = limits
            .with_conflict_budget(budget)
            .with_retry(RetryPolicy::escalating(4));
    }

    // Certification: every verdict re-checked by the independent
    // model/proof checkers; failures flip the exit code to 4.
    let mut certify = CertifyOptions {
        enabled: flag("--certify"),
        ..CertifyOptions::default()
    };
    if let Some(dir) = raw(args, "--proof-dir")? {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create proof dir {}: {e}", dir.display()))?;
        certify.proof_dir = Some(dir);
        certify.enabled = true;
    }
    // Test hook: deliberately corrupt artifacts before checking, to
    // prove the checkers are not vacuous (see tests/degradation.rs).
    match std::env::var("SCADA_CERTIFY_FAULT").ok().as_deref() {
        Some("proof") => certify.fault = Some(CertFault::CorruptProof),
        Some("model") => certify.fault = Some(CertFault::CorruptModel),
        Some(other) if !other.is_empty() => {
            return Err(format!("bad SCADA_CERTIFY_FAULT `{other}` (proof|model)"));
        }
        _ => {}
    }

    // Observability: a JSONL trace sink and/or an in-memory metrics
    // registry. Both default to off — the analyzer then pays nothing.
    let mut obs = Obs::none();
    let mut tracer: Option<Arc<JsonlTracer>> = None;
    if let Some(trace_path) = raw(args, "--trace")? {
        let sink = JsonlTracer::to_file(std::path::Path::new(trace_path))
            .map_err(|e| format!("cannot create trace file {trace_path}: {e}"))?;
        let sink = Arc::new(sink);
        tracer = Some(sink.clone());
        obs = obs.with_tracer(sink);
    }
    let mut metrics: Option<Arc<MetricsRegistry>> = None;
    if flag("--stats") {
        let registry = Arc::new(MetricsRegistry::new());
        metrics = Some(registry.clone());
        obs = obs.with_metrics(registry);
    }

    let properties = parse_properties(args)?;

    let input = match config {
        Some(config) => AnalysisInput::from(config),
        None => scada_analyzer::casestudy::five_bus_case_study(),
    };
    println!(
        "system: {} buses, {} measurements; {} IEDs, {} RTUs, {} links; spec: {spec}",
        input.measurements.num_states(),
        input.measurements.len(),
        input.topology.ieds().count(),
        input.topology.rtus().count(),
        input.topology.links().len(),
    );

    let mut any_threat = false;
    let mut any_unknown = false;
    let queries: Vec<(Property, ResiliencySpec)> = properties.iter().map(|&p| (p, spec)).collect();
    let reports = verify_batch_certified(&input, &queries, jobs, &limits, &obs, &certify);
    for (&property, report) in properties.iter().zip(&reports) {
        match &report.verdict {
            Verdict::Resilient => {
                println!("[{property}] RESILIENT at {spec}  ({:?})", report.duration);
            }
            Verdict::Threat(v) => {
                any_threat = true;
                println!("[{property}] THREAT {v} at {spec}  ({:?})", report.duration);
            }
            Verdict::Unknown { conflicts, elapsed } => {
                any_unknown = true;
                println!(
                    "[{property}] UNKNOWN at {spec}  (limit exhausted after \
                     {conflicts} conflicts, {} attempt(s), {elapsed:?})",
                    report.attempts
                );
            }
        }
        match &report.certificate {
            Some(Certificate::Proof {
                steps,
                propagations,
                elapsed,
            }) => println!(
                "  certificate: unsat proof checked \
                 ({steps} steps, {propagations} propagations, {elapsed:?})"
            ),
            Some(Certificate::Threat { steps, elapsed }) => println!(
                "  certificate: model + budget + violation re-checked \
                 ({steps} proof steps replayed, {elapsed:?})"
            ),
            Some(Certificate::Unchecked) => {
                println!("  certificate: none (unknown verdicts certify nothing)")
            }
            Some(Certificate::Failed { reason }) => {
                println!("  certificate: FAILED — {reason}")
            }
            None => {}
        }

        if flag("--enumerate") || flag("--rank") {
            // Enumeration honours the same limits as verification: a
            // bounded run terminates and reports an undecided space
            // instead of hanging.
            let mut enum_analyzer = Analyzer::with_options(&input, obs.clone(), certify.clone());
            let space =
                enumerate_threats_with_limited(&mut enum_analyzer, property, spec, 1000, &limits);
            if space.undecided {
                any_unknown = true;
            }
            println!(
                "  threat space: {} minimal vector(s){}",
                space.len(),
                if space.undecided {
                    " (undecided: limit exhausted)"
                } else if space.truncated {
                    " (truncated)"
                } else {
                    ""
                }
            );
            if flag("--enumerate") {
                for v in &space.vectors {
                    println!("    {v}");
                }
            }
            if flag("--rank") && !space.is_empty() {
                println!("  device criticality (vectors participated in):");
                for (d, count) in space.criticality_ranking() {
                    let kind = input.topology.device(d).kind();
                    println!("    {kind} {:>3}  {count}", d.one_based());
                }
            }
        }

        if flag("--max-resiliency") {
            let fmt = |m: Option<usize>| m.map_or("none".to_string(), |k| k.to_string());
            let ied = par_max_resiliency_certified(
                &input,
                property,
                BudgetAxis::IedsOnly,
                r,
                jobs,
                &limits,
                &obs,
                &certify,
            );
            let rtu = par_max_resiliency_certified(
                &input,
                property,
                BudgetAxis::RtusOnly,
                r,
                jobs,
                &limits,
                &obs,
                &certify,
            );
            let total = par_max_resiliency_certified(
                &input,
                property,
                BudgetAxis::Total,
                r,
                jobs,
                &limits,
                &obs,
                &certify,
            );
            println!(
                "  max resiliency: IEDs-only {}, RTUs-only {}, total {}",
                fmt(ied),
                fmt(rtu),
                fmt(total)
            );
        }

        if flag("--repair") && property != Property::Observability {
            match synthesize_upgrades_certified(
                &input,
                property,
                spec,
                &SynthesisOptions::default(),
                &obs,
                &certify,
            ) {
                SynthesisResult::AlreadyResilient => {
                    println!("  repair: nothing to do");
                }
                SynthesisResult::Upgrades(upgrades) => {
                    let rendered: Vec<String> = upgrades
                        .iter()
                        .map(|(a, b)| format!("{}-{}", a.one_based(), b.one_based()))
                        .collect();
                    println!(
                        "  repair: upgrade hop(s) {} to an authenticated+integrity suite",
                        rendered.join(", ")
                    );
                }
                SynthesisResult::Infeasible => {
                    println!(
                        "  repair: infeasible — the weakness is topological, \
                         not cryptographic"
                    );
                }
            }
        }
    }

    if flag("--security-index") {
        // Property-independent: one cardinality-descent per electrical
        // component over the measurement set, certified (and
        // fault-injectable) through the same log as the verdicts above.
        let mut engine = scada_analyzer::SecurityIndexAnalyzer::with_certification(
            &input.measurements,
            &certify,
        );
        let distribution = engine.distribution();
        println!(
            "security index: min {} / max {} over {} measurement(s)  ({} solve(s){})",
            distribution.min,
            distribution.max,
            distribution.indices.len(),
            distribution.solves,
            if certify.enabled {
                format!(", {} cert failure(s)", distribution.cert_failures)
            } else {
                String::new()
            }
        );
        let mut histogram = std::collections::BTreeMap::new();
        for &index in &distribution.indices {
            *histogram.entry(index).or_insert(0usize) += 1;
        }
        let rendered: Vec<String> = histogram
            .iter()
            .map(|(index, count)| format!("α={index} ×{count}"))
            .collect();
        println!("  distribution: {}", rendered.join(", "));
        if let Some(metrics) = &metrics {
            metrics.add("security_index_solves", distribution.solves as u64);
        }
    }

    if let Some(tracer) = &tracer {
        tracer.flush();
        eprintln!("trace: {} event(s) written", tracer.events());
    }
    if let Some(metrics) = &metrics {
        println!();
        print!("{}", metrics.render());
    }

    if certify.enabled {
        println!(
            "certification: {} verdict(s) checked, {} failure(s)",
            certify.log.checks(),
            certify.log.failures()
        );
    }
    Ok(if certify.log.failures() > 0 {
        // An uncertified verdict outranks every other outcome: the
        // pipeline's own answer could not be validated.
        if let Some(reason) = certify.log.first_failure() {
            eprintln!("error: certification failed: {reason}");
        }
        ExitCode::from(4)
    } else if any_threat {
        ExitCode::FAILURE
    } else if any_unknown {
        // No threat found, but not everything was decided either.
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    })
}

/// Runs `--batch DIR` against an in-process engine: every config under
/// DIR is imported, clustered, and audited, with near-duplicates
/// reached via model patches instead of cold builds. One report row
/// per config goes to stdout (JSONL by default, `--format csv` for
/// CSV); a summary goes to stderr.
fn run_batch_local(dir: &str, args: &[String]) -> Result<ExitCode, String> {
    let flag = |name: &str| args.iter().any(|a| a == name);
    let jobs = opt(args, "--jobs")?.unwrap_or(0);
    let csv = match raw(args, "--format")?.map(|s| s.as_str()) {
        None | Some("jsonl") => false,
        Some("csv") => true,
        Some(other) => return Err(format!("bad --format `{other}` (jsonl|csv)")),
    };
    let certify = scada_analyzer::CertifyOptions {
        enabled: flag("--certify"),
        ..scada_analyzer::CertifyOptions::default()
    };
    let engine = scada_analyzer::service::Engine::new(scada_analyzer::service::ServeOptions {
        certify,
        ..scada_analyzer::service::ServeOptions::default()
    });
    let submit = |line: &str| engine.handle_line(line).line;
    let started = std::time::Instant::now();
    let outcome = scada_analyzer::fleet::run_batch(std::path::Path::new(dir), jobs, &submit)
        .map_err(|e| e.to_string())?;
    if csv {
        println!("{}", scada_analyzer::fleet::ReportRow::CSV_HEADER);
        for row in &outcome.rows {
            println!("{}", row.render_csv());
        }
    } else {
        for row in &outcome.rows {
            println!("{}", row.render_json());
        }
    }
    eprintln!(
        "fleet: {} config(s), {} failed; provenance cold {} / warm {} / delta {} / cached {}  \
         ({:?})",
        outcome.rows.len(),
        outcome.failed(),
        outcome.provenance_count("cold"),
        outcome.provenance_count("warm"),
        outcome.provenance_count("delta"),
        outcome.provenance_count("cached"),
        started.elapsed(),
    );
    Ok(ExitCode::from(outcome.exit_code()))
}

/// The properties selected by `--property` (default: all three).
fn parse_properties(args: &[String]) -> Result<Vec<Property>, String> {
    match raw(args, "--property")?.map(|s| s.as_str()) {
        Some("obs") | Some("observability") => Ok(vec![Property::Observability]),
        Some("secured") => Ok(vec![Property::SecuredObservability]),
        Some("baddata") => Ok(vec![Property::BadDataDetectability]),
        Some(other) => Err(format!("unknown property `{other}` (obs|secured|baddata)")),
        None => Ok(vec![
            Property::Observability,
            Property::SecuredObservability,
            Property::BadDataDetectability,
        ]),
    }
}

// ---------------------------------------------------------------------------
// Client mode (--connect): speak the scadad line protocol over TCP
// ---------------------------------------------------------------------------

/// A line-protocol connection to a `scadad` service.
struct Conn {
    reader: std::io::BufReader<std::net::TcpStream>,
    writer: std::net::TcpStream,
}

impl Conn {
    fn connect(addr: &str) -> Result<Conn, String> {
        let stream = std::net::TcpStream::connect(addr)
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        let reader = std::io::BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone connection: {e}"))?,
        );
        Ok(Conn {
            reader,
            writer: stream,
        })
    }

    /// Sends one request line and parses the response, retrying while
    /// the service reports saturation (`"error":"busy","retry":true`).
    /// Returns the raw response line alongside the parsed value.
    fn request(&mut self, line: &str) -> Result<(String, Json), String> {
        use std::io::{BufRead as _, Write as _};
        for _ in 0..600 {
            writeln!(self.writer, "{line}").map_err(|e| format!("send failed: {e}"))?;
            self.writer
                .flush()
                .map_err(|e| format!("send failed: {e}"))?;
            let mut resp = String::new();
            let n = self
                .reader
                .read_line(&mut resp)
                .map_err(|e| format!("receive failed: {e}"))?;
            if n == 0 {
                return Err("server closed the connection".to_string());
            }
            let raw = resp.trim().to_string();
            let value = parse_json(&raw).map_err(|e| format!("bad response: {e}"))?;
            let busy = value.get("ok").and_then(Json::as_bool) == Some(false)
                && value.get("retry").and_then(Json::as_bool) == Some(true);
            if !busy {
                return Ok((raw, value));
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        Err("service stayed busy for 60s".to_string())
    }
}

fn wire_property(property: Property) -> &'static str {
    match property {
        Property::Observability => "obs",
        Property::SecuredObservability => "secured",
        Property::BadDataDetectability => "baddata",
    }
}

/// Renders a wire id array (`[1,3]`) for display.
fn fmt_ids(ids: Option<&Json>) -> String {
    let mut out = String::from("[");
    if let Some(items) = ids.and_then(Json::as_arr) {
        for (i, id) in items.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match id {
                Json::Num(n) => out.push_str(&format!("{n}")),
                other => out.push_str(&format!("{other:?}")),
            }
        }
    }
    out.push(']');
    out
}

/// Renders a wire threat object for display.
fn fmt_threat(threat: &Json) -> String {
    let mut out = format!(
        "ieds {} rtus {}",
        fmt_ids(threat.get("ieds")),
        fmt_ids(threat.get("rtus"))
    );
    if let Some(others) = threat.get("others").and_then(Json::as_arr) {
        if !others.is_empty() {
            out.push_str(&format!(" others {}", fmt_ids(threat.get("others"))));
        }
    }
    if let Some(links) = threat.get("links").and_then(Json::as_arr) {
        if !links.is_empty() {
            let rendered: Vec<String> = links
                .iter()
                .map(|pair| {
                    let a = pair.as_arr().and_then(|p| p.first()).and_then(Json::as_u64);
                    let b = pair.as_arr().and_then(|p| p.get(1)).and_then(Json::as_u64);
                    match (a, b) {
                        (Some(a), Some(b)) => format!("{a}-{b}"),
                        _ => "?".to_string(),
                    }
                })
                .collect();
            out.push_str(&format!(" links [{}]", rendered.join(", ")));
        }
    }
    out
}

/// Provenance and timing suffix shared by every query printout.
fn fmt_meta(resp: &Json) -> String {
    let provenance = resp.get("provenance").and_then(Json::as_str).unwrap_or("?");
    match resp.get("elapsed_us").and_then(Json::as_u64) {
        Some(us) => format!("({provenance}, {us} µs)"),
        None => format!("({provenance})"),
    }
}

/// Outcome flags a client run accumulates to compute the exit code.
#[derive(Default)]
struct RemoteOutcome {
    any_threat: bool,
    any_unknown: bool,
    any_cert_failed: bool,
}

impl RemoteOutcome {
    fn exit_code(&self) -> ExitCode {
        if self.any_cert_failed {
            ExitCode::from(4)
        } else if self.any_threat {
            ExitCode::FAILURE
        } else if self.any_unknown {
            ExitCode::from(3)
        } else {
            ExitCode::SUCCESS
        }
    }
}

/// Runs as a client of a `scadad` service: load the model, then issue
/// the selected queries over the wire. Exit codes mirror local mode.
fn run_client(addr: &str, args: &[String]) -> Result<ExitCode, String> {
    let flag = |name: &str| args.iter().any(|a| a == name);

    if let Some(dir) = raw(args, "--batch")? {
        // Remote batch takes --jobs (forwarded to the service) and
        // --format (rendered client-side); certification stays a
        // service-side setting.
        for unsupported in ["--rank", "--repair", "--certify", "--proof-dir"] {
            if flag(unsupported) {
                return Err(format!(
                    "{unsupported} is not supported with --connect \
                     (certification is a service-side setting)"
                ));
            }
        }
        let mut conn = Conn::connect(addr)?;
        return run_batch_remote(&mut conn, dir, args);
    }

    for unsupported in ["--rank", "--repair", "--jobs", "--certify", "--proof-dir"] {
        if flag(unsupported) {
            return Err(format!(
                "{unsupported} is not supported with --connect \
                 (certification and job count are service-side settings)"
            ));
        }
    }

    let config_path = args.first().filter(|a| !a.starts_with("--"));
    let mut conn = Conn::connect(addr)?;

    if config_path.is_none() && !flag("--case-study") {
        if flag("--health") {
            // Health-only invocation: answered even while the service
            // is recovering or draining, so no model is needed.
            let (raw_line, resp) = conn.request("{\"op\":\"health\"}")?;
            if resp.get("ok").and_then(Json::as_bool) != Some(true) {
                return Err("health failed".to_string());
            }
            println!("health: {raw_line}");
            if !flag("--shutdown") {
                return Ok(ExitCode::SUCCESS);
            }
        }
        if flag("--shutdown") {
            // Shutdown-only invocation: no model needed.
            let (_, resp) = conn.request("{\"op\":\"shutdown\"}")?;
            return if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                println!("service draining");
                Ok(ExitCode::SUCCESS)
            } else {
                eprintln!("error: shutdown rejected");
                Ok(ExitCode::FAILURE)
            };
        }
        return Err(
            "usage: scada-analyzer --connect ADDR <config-file> [options]   \
             (or --case-study; --shutdown alone stops the service, \
             --health alone probes it)"
                .to_string(),
        );
    }

    // Load: ship the raw config text. The spec section is parsed
    // locally so CLI overrides default to the same values as local
    // mode (the wire spec is always explicit).
    let (load_req, (mut k1, mut k2), mut r, config_links) = match config_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            let config = match parse_config(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            let mut req = String::from("{\"op\":\"load\",\"config\":\"");
            json_escape_into(&text, &mut req);
            req.push_str("\"}");
            (
                req,
                config.resilience,
                config.corrupted,
                config.link_failures,
            )
        }
        None => {
            let req = "{\"op\":\"load\",\"case_study\":true}".to_string();
            (req, (1, 1), 1, 0)
        }
    };

    let total_k: Option<usize> = opt(args, "--k")?;
    if let Some(v) = opt(args, "--k1")? {
        k1 = v;
    }
    if let Some(v) = opt(args, "--k2")? {
        k2 = v;
    }
    if let Some(v) = opt(args, "--r")? {
        r = v;
    }
    let links: usize = opt(args, "--links")?.unwrap_or(config_links);
    let mut spec = match total_k {
        Some(k) => ResiliencySpec::total(k),
        None => ResiliencySpec::split(k1, k2),
    };
    spec = spec.with_corrupted(r).with_link_failures(links);
    let mut spec_wire = match total_k {
        Some(k) => format!("{{\"k\":{k}"),
        None => format!("{{\"k1\":{k1},\"k2\":{k2}"),
    };
    spec_wire.push_str(&format!(",\"r\":{r},\"links\":{links}}}"));

    let mut limit_fields: Vec<String> = Vec::new();
    if let Some(v) = raw(args, "--timeout")? {
        let Some(timeout) = parse_duration(v) else {
            return Err(format!("bad --timeout `{v}` (use e.g. 150ms, 5s, 2m)"));
        };
        limit_fields.push(format!("\"timeout_ms\":{}", timeout.as_millis()));
    }
    if let Some(budget) = opt::<u64>(args, "--conflict-budget")? {
        limit_fields.push(format!("\"conflict_budget\":{budget}"));
    }
    let limits_field = if limit_fields.is_empty() {
        String::new()
    } else {
        format!(",\"limits\":{{{}}}", limit_fields.join(","))
    };

    let properties = parse_properties(args)?;

    let (_, loaded) = conn.request(&load_req)?;
    if loaded.get("ok").and_then(Json::as_bool) != Some(true) {
        let msg = loaded.get("error").and_then(Json::as_str).unwrap_or("?");
        eprintln!("error: {addr}: {msg}");
        return Ok(ExitCode::FAILURE);
    }
    let mut model = loaded
        .get("model")
        .and_then(Json::as_str)
        .ok_or("malformed load response (no model hash)")?
        .to_string();
    println!(
        "connected to {addr}: model {model} ({} session, {} devices, {} measurements)",
        loaded.get("session").and_then(Json::as_str).unwrap_or("?"),
        loaded.get("devices").and_then(Json::as_u64).unwrap_or(0),
        loaded
            .get("measurements")
            .and_then(Json::as_u64)
            .unwrap_or(0),
    );

    // Patches mutate the warm session in place and re-key it under the
    // lineage hash, so each reply's `model` becomes the hash every
    // subsequent request (and patch) must address.
    for patch in raw_all(args, "--patch")? {
        if let Err(e) = parse_json(patch) {
            return Err(format!("bad --patch `{patch}`: {e}"));
        }
        let req = format!("{{\"op\":\"patch\",\"model\":\"{model}\",\"patch\":{patch}}}");
        let (_, resp) = conn.request(&req)?;
        if resp.get("ok").and_then(Json::as_bool) != Some(true) {
            let msg = resp.get("error").and_then(Json::as_str).unwrap_or("?");
            eprintln!("error: patch {patch} rejected: {msg}");
            return Ok(ExitCode::FAILURE);
        }
        model = resp
            .get("model")
            .and_then(Json::as_str)
            .ok_or("malformed patch response (no model hash)")?
            .to_string();
        println!(
            "patched to model {model}: +{} device(s), +{} link(s), {} pinned, \
             dirty plain={} secured={}, {} cached verdict(s) migrated  {}",
            resp.get("new_devices").and_then(Json::as_u64).unwrap_or(0),
            resp.get("new_links").and_then(Json::as_u64).unwrap_or(0),
            resp.get("newly_pinned").and_then(Json::as_u64).unwrap_or(0),
            resp.get("plain_dirty")
                .and_then(Json::as_bool)
                .unwrap_or(true),
            resp.get("secured_dirty")
                .and_then(Json::as_bool)
                .unwrap_or(true),
            resp.get("cache_migrated")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            fmt_meta(&resp),
        );
    }

    let mut outcome = RemoteOutcome::default();
    for &property in &properties {
        let req = format!(
            "{{\"op\":\"verify\",\"model\":\"{model}\",\"property\":\"{}\",\
             \"spec\":{spec_wire}{limits_field}}}",
            wire_property(property)
        );
        let (_, resp) = conn.request(&req)?;
        print_remote_verify(property, &spec, &resp, &mut outcome)?;

        if flag("--enumerate") {
            let req = format!(
                "{{\"op\":\"enumerate\",\"model\":\"{model}\",\"property\":\"{}\",\
                 \"spec\":{spec_wire},\"cap\":1000{limits_field}}}",
                wire_property(property)
            );
            let (_, resp) = conn.request(&req)?;
            print_remote_enumerate(&resp, &mut outcome)?;
        }

        if flag("--max-resiliency") {
            let mut rendered: Vec<String> = Vec::new();
            for axis in ["ieds", "rtus", "total"] {
                let req = format!(
                    "{{\"op\":\"maxres\",\"model\":\"{model}\",\"property\":\"{}\",\
                     \"axis\":\"{axis}\",\"r\":{r}{limits_field}}}",
                    wire_property(property)
                );
                let (_, resp) = conn.request(&req)?;
                if resp.get("ok").and_then(Json::as_bool) != Some(true) {
                    let msg = resp.get("error").and_then(Json::as_str).unwrap_or("?");
                    return Err(format!("maxres failed: {msg}"));
                }
                let max = resp.get("max").and_then(Json::as_u64);
                if max.is_none() {
                    outcome.any_unknown = true;
                }
                rendered.push(format!(
                    "{axis} {} {}",
                    max.map_or("none".to_string(), |k| k.to_string()),
                    fmt_meta(&resp)
                ));
            }
            println!("  max resiliency: {}", rendered.join(", "));
        }
    }

    if flag("--security-index") {
        let req = format!("{{\"op\":\"security_index\",\"model\":\"{model}\"}}");
        let (_, resp) = conn.request(&req)?;
        print_remote_security_index(&resp, &mut outcome)?;
    }

    if flag("--stats") {
        let (raw_line, resp) = conn.request("{\"op\":\"stats\"}")?;
        if resp.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err("stats failed".to_string());
        }
        // Raw JSON on purpose: scripts grep counters out of this line.
        println!("stats: {raw_line}");
    }

    if flag("--health") {
        let (raw_line, resp) = conn.request("{\"op\":\"health\"}")?;
        if resp.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err("health failed".to_string());
        }
        println!("health: {raw_line}");
    }

    if flag("--shutdown") {
        let (_, resp) = conn.request("{\"op\":\"shutdown\"}")?;
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            println!("service draining");
        } else {
            eprintln!("error: shutdown rejected");
        }
    }

    Ok(outcome.exit_code())
}

/// Runs `--connect … --batch DIR` as the service's `batch` op: the
/// server scans and audits the fleet (DIR resolves under *its*
/// `--fleet-root`), and the rows come back in one consolidated reply.
/// `--jobs` is forwarded to the service; `--format csv` is rendered
/// client-side from the returned rows. One report row per config goes
/// to stdout, like local mode; the exit code follows the same ladder
/// (4 > 6 > 1 > 3 > 0).
fn run_batch_remote(conn: &mut Conn, dir: &str, args: &[String]) -> Result<ExitCode, String> {
    let jobs: Option<usize> = opt(args, "--jobs")?;
    let csv = match raw(args, "--format")?.map(|s| s.as_str()) {
        None | Some("jsonl") => false,
        Some("csv") => true,
        Some(other) => return Err(format!("bad --format `{other}` (jsonl|csv)")),
    };
    let mut req = String::from("{\"op\":\"batch\",\"dir\":\"");
    json_escape_into(dir, &mut req);
    req.push('"');
    if let Some(jobs) = jobs {
        req.push_str(&format!(",\"jobs\":{jobs}"));
    }
    req.push('}');
    let (_, resp) = conn.request(&req)?;
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        let msg = resp.get("error").and_then(Json::as_str).unwrap_or("?");
        eprintln!("error: batch failed: {msg}");
        return Ok(ExitCode::FAILURE);
    }
    let empty: Vec<Json> = Vec::new();
    let rows = resp.get("rows").and_then(Json::as_arr).unwrap_or(&empty);
    let mut cert_failed = false;
    let mut errored = false;
    let mut threat = false;
    let mut unknown = false;
    if csv {
        println!("{}", scada_analyzer::fleet::ReportRow::CSV_HEADER);
    }
    for row in rows {
        if csv {
            println!(
                "{}",
                scada_analyzer::fleet::ReportRow::from_wire(row).render_csv()
            );
        } else {
            println!("{}", row.render()?);
        }
        cert_failed |= row.get("certificate").and_then(Json::as_str) == Some("failed");
        errored |= row.get("ok").and_then(Json::as_bool) == Some(false);
        match row.get("verdict").and_then(Json::as_str) {
            Some("threat") => threat = true,
            Some("unknown") => unknown = true,
            _ => {}
        }
        if matches!(row.get("max"), Some(Json::Null)) {
            unknown = true;
        }
    }
    eprintln!(
        "fleet: {} config(s), {} failed; provenance cold {} / warm {} / delta {} / cached {}",
        resp.get("configs").and_then(Json::as_u64).unwrap_or(0),
        resp.get("failed").and_then(Json::as_u64).unwrap_or(0),
        resp.get("cold").and_then(Json::as_u64).unwrap_or(0),
        resp.get("warm").and_then(Json::as_u64).unwrap_or(0),
        resp.get("delta").and_then(Json::as_u64).unwrap_or(0),
        resp.get("cached").and_then(Json::as_u64).unwrap_or(0),
    );
    Ok(ExitCode::from(if cert_failed {
        4
    } else if errored {
        6
    } else if threat {
        1
    } else if unknown {
        3
    } else {
        0
    }))
}

/// Prints one remote verify response and folds it into the outcome.
fn print_remote_verify(
    property: Property,
    spec: &ResiliencySpec,
    resp: &Json,
    outcome: &mut RemoteOutcome,
) -> Result<(), String> {
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        let msg = resp.get("error").and_then(Json::as_str).unwrap_or("?");
        return Err(format!("verify failed: {msg}"));
    }
    let meta = fmt_meta(resp);
    match resp.get("verdict").and_then(Json::as_str) {
        Some("resilient") => {
            println!("[{property}] RESILIENT at {spec}  {meta}");
        }
        Some("threat") => {
            outcome.any_threat = true;
            let threat = resp
                .get("threat")
                .map(fmt_threat)
                .unwrap_or_else(|| "?".to_string());
            println!("[{property}] THREAT {threat} at {spec}  {meta}");
        }
        Some("unknown") => {
            outcome.any_unknown = true;
            println!(
                "[{property}] UNKNOWN at {spec}  (limit exhausted after \
                 {} conflicts, {} attempt(s))  {meta}",
                resp.get("conflicts").and_then(Json::as_u64).unwrap_or(0),
                resp.get("attempts").and_then(Json::as_u64).unwrap_or(0),
            );
        }
        other => return Err(format!("malformed verify response (verdict {other:?})")),
    }
    match resp.get("certificate").and_then(Json::as_str) {
        Some("failed") => {
            outcome.any_cert_failed = true;
            println!(
                "  certificate: FAILED — {}",
                resp.get("certificate_error")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
            );
        }
        Some(kind) => println!("  certificate: {kind} (checked service-side)"),
        None => {}
    }
    Ok(())
}

/// Prints one remote security-index response and folds it into the
/// outcome (service-side certification failures map to exit 4, like
/// local mode).
fn print_remote_security_index(resp: &Json, outcome: &mut RemoteOutcome) -> Result<(), String> {
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        let msg = resp.get("error").and_then(Json::as_str).unwrap_or("?");
        return Err(format!("security_index failed: {msg}"));
    }
    if resp
        .get("cert_failures")
        .and_then(Json::as_u64)
        .unwrap_or(0)
        > 0
    {
        outcome.any_cert_failed = true;
    }
    println!(
        "security index: min {} / max {} over {} measurement(s), {} solve(s)  {}",
        resp.get("min").and_then(Json::as_u64).unwrap_or(0),
        resp.get("max").and_then(Json::as_u64).unwrap_or(0),
        resp.get("count").and_then(Json::as_u64).unwrap_or(0),
        resp.get("solves").and_then(Json::as_u64).unwrap_or(0),
        fmt_meta(resp)
    );
    Ok(())
}

/// Prints one remote enumerate response and folds it into the outcome.
fn print_remote_enumerate(resp: &Json, outcome: &mut RemoteOutcome) -> Result<(), String> {
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        let msg = resp.get("error").and_then(Json::as_str).unwrap_or("?");
        return Err(format!("enumerate failed: {msg}"));
    }
    let undecided = resp.get("undecided").and_then(Json::as_bool) == Some(true);
    let truncated = resp.get("truncated").and_then(Json::as_bool) == Some(true);
    let vectors = resp.get("vectors").and_then(Json::as_arr).unwrap_or(&[]);
    if undecided {
        outcome.any_unknown = true;
    } else if !vectors.is_empty() {
        outcome.any_threat = true;
    }
    println!(
        "  threat space: {} minimal vector(s){}  {}",
        resp.get("count")
            .and_then(Json::as_u64)
            .unwrap_or(vectors.len() as u64),
        if undecided {
            " (undecided: limit exhausted)"
        } else if truncated {
            " (truncated)"
        } else {
            ""
        },
        fmt_meta(resp)
    );
    for vector in vectors {
        println!("    {}", fmt_threat(vector));
    }
    Ok(())
}
