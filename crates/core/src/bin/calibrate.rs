//! Calibration search driver: recovers a Table II measurement numbering
//! consistent with every verification outcome the paper reports.
//!
//! ```text
//! cargo run --release -p scada-analyzer --bin calibrate [seeds] [iterations]
//! ```

use scada_analyzer::casestudy::calibrate::{evaluate_labeling, search};
use scada_analyzer::casestudy::default_labeling;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let iterations: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20_000);

    let baseline = evaluate_labeling(&default_labeling());
    println!(
        "baseline score {}/{}",
        baseline.score(),
        baseline.max_score()
    );

    let mut best_score = baseline.score();
    for seed in 0..seeds {
        let (labeling, report) = search(seed, iterations);
        println!(
            "seed {seed}: score {}/{}{}",
            report.score(),
            report.max_score(),
            if report.perfect() { "  PERFECT" } else { "" }
        );
        if report.score() > best_score {
            best_score = report.score();
            println!("  labeling:");
            for (i, k) in labeling.iter().enumerate() {
                println!("    z{} = {k:?}", i + 1);
            }
            for o in &report.outcomes {
                println!(
                    "    [{}] {} -> {}",
                    if o.satisfied { "ok" } else { "MISS" },
                    o.name,
                    o.detail
                );
            }
        }
        if report.perfect() {
            break;
        }
    }
}
