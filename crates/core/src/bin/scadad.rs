//! `scadad` — the long-running analysis service.
//!
//! ```text
//! scadad [options]
//!
//! options:
//!   --listen ADDR    serve the line-delimited JSON protocol on a TCP
//!                    socket (e.g. 127.0.0.1:0 for an ephemeral port);
//!                    prints `scadad: listening on HOST:PORT` once bound
//!   --stdio          serve on stdin/stdout (the default)
//!   --shards N       engine shards; each owns a disjoint slice of the
//!                    sessions and the verdict cache, routed by model
//!                    hash (default 1; totals below are divided across
//!                    shards; >1 also replicates hot verdicts)
//!   --thread-per-conn with --listen, use the legacy one-thread-per-
//!                    connection transport instead of the event loop
//!   --sessions N     warm analyzer sessions kept alive (default 8)
//!   --cache N        cached verdicts kept (default 1024, 0 disables)
//!   --max-inflight N concurrent queries admitted (0 = one per core)
//!   --max-line N     longest accepted request line in bytes (default 1 MiB)
//!   --fleet-root DIR enable the `batch` op, restricted to channel
//!                    directories under DIR; without this flag the op
//!                    is rejected (a network client must not resolve
//!                    arbitrary server paths)
//!   --certify        independently re-check every verdict (fixed for
//!                    the service lifetime)
//!   --proof-dir DIR  also write DRAT proofs to DIR (implies --certify)
//!   --trace PATH     write a structured JSONL event trace to PATH
//!   --journal DIR    write-ahead journal of state-mutating ops (load /
//!                    patch / evict) under DIR; on restart the warm
//!                    sessions are rebuilt by replaying the journal
//!                    (works across a `--shards` change)
//!   --durability strict|batch|off
//!                    with --journal: fsync policy (default strict — an
//!                    op is acknowledged only after its record is on
//!                    disk; batch syncs every 32 appends; off leaves
//!                    syncing to the OS)
//! ```
//!
//! With `--listen`, requests may be pipelined: write many lines without
//! waiting, optionally tagging each with an `"id"` (echoed on the
//! reply); replies come back in request order per connection.
//!
//! The service keeps an [`Analyzer`](scada_analyzer::Analyzer) warm per
//! loaded model (so repeat queries reuse learned solver state) and a
//! verdict cache in front of the sessions (so repeated queries answer
//! without touching the solver at all). Clients speak one JSON object
//! per line: `load`, `verify`, `maxres`, `enumerate`, `security_index`,
//! `patch`, `batch`, `stats`, `evict`, `health`, `shutdown`.
//! `scada-analyzer --connect ADDR` is a ready-made client.
//!
//! The `batch` op (`{"op":"batch","dir":"fleet/","jobs":4}`) audits a
//! whole directory of channel-directory configs in one request: the
//! fleet planner dedups near-duplicate configs into patch chains over
//! this service's warm sessions, and the reply carries one report row
//! per config. Inner loads and patches go through the normal admission
//! control and, when configured, the journal. The op requires
//! `--fleet-root`; `dir` is resolved relative to that root and may not
//! escape it (`.` or an empty `dir` audits the root itself).
//!
//! On `shutdown` — or SIGTERM/SIGINT — the service drains: in-flight
//! queries finish (flushing any DRAT proofs when certifying, and the
//! journal when one is configured), then the process exits 0.
//!
//! With `--journal`, startup replays the journal in the background
//! while the server answers `{"error":"warming","retry":true}`; the
//! `health` op reports `recovering` until the replay finishes, then
//! `ready`. A journal directory that fails validation (truncated
//! headers, torn records anywhere but the newest segment's tail) or a
//! replay that cannot reproduce the recorded model lineage exits with
//! code 5 rather than serving divergent state.

use std::process::ExitCode;
use std::sync::Arc;

use scada_analyzer::service::{
    serve_stdio, serve_tcp, signal, Durability, FaultPlan, JournalConfig, JournaledEngine,
    LineHandler, ServeOptions, ShardedEngine,
};
use scada_analyzer::{CertifyOptions, JsonlTracer, Obs};

/// Exit code for a journal that fails closed: validation at open, or a
/// replay that cannot reproduce the recorded lineage.
const EXIT_JOURNAL: u8 = 5;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(usage) => {
            eprintln!("error: {usage}");
            ExitCode::from(2)
        }
    }
}

/// The value following option `name`, if the option is present.
///
/// # Errors
///
/// The option being present without a value is a usage error.
fn raw<'a>(args: &'a [String], name: &str) -> Result<Option<&'a String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v)),
            None => Err(format!("{name} requires a value")),
        },
    }
}

/// A numeric option. Malformed values are usage errors, not silent
/// fallbacks to the default.
fn opt<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match raw(args, name)? {
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("bad {name} `{v}` (expected a number)")),
    }
}

/// Serves the chosen transport, generic over the handler so the bare
/// sharded engine and the journal wrapper share every code path: a
/// bound listener runs the readiness event loop where available (unix,
/// thread-per-connection elsewhere or on request); otherwise stdio.
fn serve<H: LineHandler>(
    engine: Arc<H>,
    listener: Option<std::net::TcpListener>,
    thread_per_conn: bool,
) -> std::io::Result<()> {
    let Some(listener) = listener else {
        return serve_stdio(&*engine, std::io::stdin(), std::io::stdout());
    };
    #[cfg(unix)]
    {
        if !thread_per_conn {
            return scada_analyzer::service::serve_event_loop(engine, listener, 0);
        }
    }
    let _ = thread_per_conn;
    serve_tcp(engine, listener)
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let flag = |name: &str| args.iter().any(|a| a == name);
    const TAKES_VALUE: [&str; 11] = [
        "--listen",
        "--shards",
        "--sessions",
        "--cache",
        "--max-inflight",
        "--max-line",
        "--fleet-root",
        "--proof-dir",
        "--trace",
        "--journal",
        "--durability",
    ];
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if TAKES_VALUE.contains(&arg.as_str()) {
            i += 2; // the value is consumed by raw()/opt() below
        } else if arg.starts_with("--") {
            i += 1;
        } else {
            // A bare word is a typo, not a config file: models are
            // loaded over the protocol, not from the command line.
            return Err(format!(
                "unexpected argument `{arg}` (scadad takes options only; \
                 load models over the protocol)"
            ));
        }
    }

    let mut certify = CertifyOptions {
        enabled: flag("--certify"),
        ..CertifyOptions::default()
    };
    if let Some(dir) = raw(args, "--proof-dir")? {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create proof dir {}: {e}", dir.display()))?;
        certify.proof_dir = Some(dir);
        certify.enabled = true;
    }

    let mut obs = Obs::none();
    let mut tracer: Option<Arc<JsonlTracer>> = None;
    if let Some(trace_path) = raw(args, "--trace")? {
        let sink = JsonlTracer::to_file(std::path::Path::new(trace_path))
            .map_err(|e| format!("cannot create trace file {trace_path}: {e}"))?;
        let sink = Arc::new(sink);
        tracer = Some(sink.clone());
        obs = obs.with_tracer(sink);
    }

    let fleet_root = match raw(args, "--fleet-root")? {
        None => None,
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            if !dir.is_dir() {
                return Err(format!("--fleet-root {} is not a directory", dir.display()));
            }
            Some(dir)
        }
    };

    let defaults = ServeOptions::default();
    let options = ServeOptions {
        sessions: opt(args, "--sessions")?.unwrap_or(defaults.sessions),
        cache: opt(args, "--cache")?.unwrap_or(defaults.cache),
        max_inflight: opt(args, "--max-inflight")?.unwrap_or(defaults.max_inflight),
        max_line: opt(args, "--max-line")?.unwrap_or(defaults.max_line),
        obs,
        certify,
        fleet_root,
    };

    let listen = raw(args, "--listen")?.cloned();
    if listen.is_some() && flag("--stdio") {
        return Err("--listen and --stdio are mutually exclusive".to_string());
    }
    let shards: usize = opt(args, "--shards")?.unwrap_or(1);
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let thread_per_conn = flag("--thread-per-conn");
    if thread_per_conn && listen.is_none() {
        return Err("--thread-per-conn requires --listen".to_string());
    }

    let journal_dir = raw(args, "--journal")?.cloned();
    let durability = match raw(args, "--durability")? {
        None => Durability::Strict,
        Some(v) => {
            if journal_dir.is_none() {
                return Err("--durability requires --journal".to_string());
            }
            v.parse::<Durability>()?
        }
    };

    // SIGTERM/SIGINT request the same graceful drain a `shutdown` op
    // would; on platforms without the raw-syscall backend the signals
    // simply keep their default disposition.
    let _ = signal::install();

    let sessions = options.sessions;
    let engine = Arc::new(ShardedEngine::new(options, shards));
    let listener = match &listen {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .map_err(|e| format!("cannot bind {addr}: {e}"))?;
            let local = listener
                .local_addr()
                .map_err(|e| format!("cannot resolve bound address: {e}"))?;
            // The one line clients (and CI scripts) wait for: with port
            // 0 this is the only way to learn the real port. Printed
            // before recovery finishes on purpose — clients may connect
            // and poll `health` while the service warms.
            println!("scadad: listening on {local}");
            use std::io::Write as _;
            std::io::stdout().flush().ok();
            Some(listener)
        }
        None => None,
    };

    let served = match journal_dir {
        Some(dir) => {
            let mut config = JournalConfig::new(&dir);
            config.durability = durability;
            // Retain more recipes than the engine holds sessions so
            // replay re-runs the engine's own LRU decisions instead of
            // being clipped by them.
            config.retain_models = sessions * 2 + 8;
            if let Ok(v) = std::env::var("SCADAD_JOURNAL_SEGMENT_BYTES") {
                config.segment_bytes = v
                    .parse()
                    .map_err(|_| format!("bad SCADAD_JOURNAL_SEGMENT_BYTES `{v}`"))?;
            }
            config.fault = FaultPlan::from_env()?;
            let journaled = match JournaledEngine::open(engine, config) {
                Ok(j) => Arc::new(j),
                Err(e) => {
                    eprintln!("error: journal {dir}: {e}");
                    return Ok(ExitCode::from(EXIT_JOURNAL));
                }
            };
            if journaled.needs_recovery() {
                let stats = journaled.open_stats();
                eprintln!(
                    "scadad: recovering {} session(s) from {} journal record(s)",
                    stats.models, stats.replayed
                );
                let worker = Arc::clone(&journaled);
                std::thread::Builder::new()
                    .name("scadad-recovery".to_string())
                    .spawn(move || {
                        // Test hook: hold the service in `recovering`
                        // long enough for a client to observe it.
                        if let Some(ms) = std::env::var("SCADAD_RECOVERY_DELAY_MS")
                            .ok()
                            .and_then(|v| v.parse::<u64>().ok())
                        {
                            std::thread::sleep(std::time::Duration::from_millis(ms));
                        }
                        if let Err(e) = worker.recover() {
                            eprintln!("error: recovery failed: {e}");
                            // Fail closed: serving would hand out state
                            // that disagrees with the journal.
                            std::process::exit(i32::from(EXIT_JOURNAL));
                        }
                    })
                    .map_err(|e| format!("cannot spawn recovery thread: {e}"))?;
            }
            serve(journaled, listener, thread_per_conn)
        }
        None => serve(engine, listener, thread_per_conn),
    };
    if let Err(e) = served {
        eprintln!("error: transport failed: {e}");
        return Ok(ExitCode::FAILURE);
    }

    if let Some(tracer) = &tracer {
        tracer.flush();
        eprintln!("trace: {} event(s) written", tracer.events());
    }
    Ok(ExitCode::SUCCESS)
}
