//! `scadad` — the long-running analysis service.
//!
//! ```text
//! scadad [options]
//!
//! options:
//!   --listen ADDR    serve the line-delimited JSON protocol on a TCP
//!                    socket (e.g. 127.0.0.1:0 for an ephemeral port);
//!                    prints `scadad: listening on HOST:PORT` once bound
//!   --stdio          serve on stdin/stdout (the default)
//!   --shards N       engine shards; each owns a disjoint slice of the
//!                    sessions and the verdict cache, routed by model
//!                    hash (default 1; totals below are divided across
//!                    shards; >1 also replicates hot verdicts)
//!   --thread-per-conn with --listen, use the legacy one-thread-per-
//!                    connection transport instead of the event loop
//!   --sessions N     warm analyzer sessions kept alive (default 8)
//!   --cache N        cached verdicts kept (default 1024, 0 disables)
//!   --max-inflight N concurrent queries admitted (0 = one per core)
//!   --max-line N     longest accepted request line in bytes (default 1 MiB)
//!   --certify        independently re-check every verdict (fixed for
//!                    the service lifetime)
//!   --proof-dir DIR  also write DRAT proofs to DIR (implies --certify)
//!   --trace PATH     write a structured JSONL event trace to PATH
//! ```
//!
//! With `--listen`, requests may be pipelined: write many lines without
//! waiting, optionally tagging each with an `"id"` (echoed on the
//! reply); replies come back in request order per connection.
//!
//! The service keeps an [`Analyzer`](scada_analyzer::Analyzer) warm per
//! loaded model (so repeat queries reuse learned solver state) and a
//! verdict cache in front of the sessions (so repeated queries answer
//! without touching the solver at all). Clients speak one JSON object
//! per line: `load`, `verify`, `maxres`, `enumerate`, `security_index`,
//! `stats`, `evict`, `shutdown`. `scada-analyzer --connect ADDR` is a ready-made client.
//!
//! On `shutdown` the service drains: in-flight queries finish (flushing
//! any DRAT proofs when certifying), then the process exits 0.

use std::process::ExitCode;
use std::sync::Arc;

use scada_analyzer::service::{serve_stdio, serve_tcp, ServeOptions, ShardedEngine};
use scada_analyzer::{CertifyOptions, JsonlTracer, Obs};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(usage) => {
            eprintln!("error: {usage}");
            ExitCode::from(2)
        }
    }
}

/// The value following option `name`, if the option is present.
///
/// # Errors
///
/// The option being present without a value is a usage error.
fn raw<'a>(args: &'a [String], name: &str) -> Result<Option<&'a String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v)),
            None => Err(format!("{name} requires a value")),
        },
    }
}

/// A numeric option. Malformed values are usage errors, not silent
/// fallbacks to the default.
fn opt<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match raw(args, name)? {
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("bad {name} `{v}` (expected a number)")),
    }
}

/// Serves a bound listener: the readiness event loop where available
/// (unix), thread-per-connection elsewhere or on request.
fn serve_listener(
    engine: Arc<ShardedEngine>,
    listener: std::net::TcpListener,
    thread_per_conn: bool,
) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        if !thread_per_conn {
            return scada_analyzer::service::serve_event_loop(engine, listener, 0);
        }
    }
    let _ = thread_per_conn;
    serve_tcp(engine, listener)
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let flag = |name: &str| args.iter().any(|a| a == name);
    const TAKES_VALUE: [&str; 8] = [
        "--listen",
        "--shards",
        "--sessions",
        "--cache",
        "--max-inflight",
        "--max-line",
        "--proof-dir",
        "--trace",
    ];
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if TAKES_VALUE.contains(&arg.as_str()) {
            i += 2; // the value is consumed by raw()/opt() below
        } else if arg.starts_with("--") {
            i += 1;
        } else {
            // A bare word is a typo, not a config file: models are
            // loaded over the protocol, not from the command line.
            return Err(format!(
                "unexpected argument `{arg}` (scadad takes options only; \
                 load models over the protocol)"
            ));
        }
    }

    let mut certify = CertifyOptions {
        enabled: flag("--certify"),
        ..CertifyOptions::default()
    };
    if let Some(dir) = raw(args, "--proof-dir")? {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create proof dir {}: {e}", dir.display()))?;
        certify.proof_dir = Some(dir);
        certify.enabled = true;
    }

    let mut obs = Obs::none();
    let mut tracer: Option<Arc<JsonlTracer>> = None;
    if let Some(trace_path) = raw(args, "--trace")? {
        let sink = JsonlTracer::to_file(std::path::Path::new(trace_path))
            .map_err(|e| format!("cannot create trace file {trace_path}: {e}"))?;
        let sink = Arc::new(sink);
        tracer = Some(sink.clone());
        obs = obs.with_tracer(sink);
    }

    let defaults = ServeOptions::default();
    let options = ServeOptions {
        sessions: opt(args, "--sessions")?.unwrap_or(defaults.sessions),
        cache: opt(args, "--cache")?.unwrap_or(defaults.cache),
        max_inflight: opt(args, "--max-inflight")?.unwrap_or(defaults.max_inflight),
        max_line: opt(args, "--max-line")?.unwrap_or(defaults.max_line),
        obs,
        certify,
    };

    let listen = raw(args, "--listen")?.cloned();
    if listen.is_some() && flag("--stdio") {
        return Err("--listen and --stdio are mutually exclusive".to_string());
    }
    let shards: usize = opt(args, "--shards")?.unwrap_or(1);
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let thread_per_conn = flag("--thread-per-conn");
    if thread_per_conn && listen.is_none() {
        return Err("--thread-per-conn requires --listen".to_string());
    }

    let engine = Arc::new(ShardedEngine::new(options, shards));
    let served = match listen {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr)
                .map_err(|e| format!("cannot bind {addr}: {e}"))?;
            let local = listener
                .local_addr()
                .map_err(|e| format!("cannot resolve bound address: {e}"))?;
            // The one line clients (and CI scripts) wait for: with port
            // 0 this is the only way to learn the real port.
            println!("scadad: listening on {local}");
            use std::io::Write as _;
            std::io::stdout().flush().ok();
            serve_listener(engine, listener, thread_per_conn)
        }
        None => serve_stdio(&*engine, std::io::stdin(), std::io::stdout()),
    };
    if let Err(e) = served {
        eprintln!("error: transport failed: {e}");
        return Ok(ExitCode::FAILURE);
    }

    if let Some(tracer) = &tracer {
        tracer.flush();
        eprintln!("trace: {} event(s) written", tracer.events());
    }
    Ok(ExitCode::SUCCESS)
}
