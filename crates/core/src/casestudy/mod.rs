//! The paper's 5-bus case study (§IV).

mod fivebus;

pub mod calibrate;

pub use fivebus::{
    default_labeling, five_bus_case_study, five_bus_fig4, five_bus_with_labeling, FiveBusTopology,
};
