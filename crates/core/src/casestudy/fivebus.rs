//! The Table II input: a 5-bus subsystem of the IEEE 14-bus grid,
//! 14 measurements on 8 IEDs, 4 RTUs, one MTU, one router.
//!
//! The paper's Jacobian (which pins the measurement numbering) is partly
//! illegible in the available text; the numbering used here was
//! *calibrated* against every verification outcome the paper reports for
//! Scenarios 1 and 2 (see `calibrate` and EXPERIMENTS.md). Everything
//! else — device inventory, 13 links, the 11 security-profile entries,
//! and the IED→measurement association — is taken verbatim from
//! Table II.

use powergrid::ieee::case5;
use powergrid::{BusId, MeasurementId, MeasurementKind, MeasurementSet, PowerSystem};
use scadasim::{CryptoProfile, Device, DeviceId, DeviceKind, Link, Topology};

use crate::input::AnalysisInput;

/// Which SCADA topology variant of the case study to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FiveBusTopology {
    /// Fig 3: RTU 9 connects to the router (14).
    Fig3,
    /// Fig 4: RTU 9 connects to RTU 12 instead.
    Fig4,
}

/// Looks up a flow measurement "measured at bus `at`, toward bus `to`".
fn flow(system: &PowerSystem, at: usize, to: usize) -> MeasurementKind {
    let a = BusId::from_one_based(at);
    let b = BusId::from_one_based(to);
    let branch = system
        .branch_between(a, b)
        .unwrap_or_else(|| panic!("case5 has no line {at}-{to}"));
    if system.branch(branch).from == a {
        MeasurementKind::FlowForward(branch)
    } else {
        MeasurementKind::FlowBackward(branch)
    }
}

fn injection(bus: usize) -> MeasurementKind {
    MeasurementKind::Injection(BusId::from_one_based(bus))
}

/// The calibrated measurement numbering of Table II (measurements 1–14).
///
/// Flows are written as (measuring end, far end); injections by bus.
/// This exact labeling reproduces **all twelve** verification outcomes
/// the paper reports for Scenarios 1 and 2 (the calibration scorecard is
/// `calibrate::evaluate_labeling`; the regression test below keeps it
/// pinned): nine flows and five injections drawn from the 19 candidate
/// quantities of the 5-bus system.
pub fn default_labeling() -> Vec<MeasurementKind> {
    let sys = case5();
    vec![
        flow(&sys, 5, 4), // z1
        flow(&sys, 3, 4), // z2
        flow(&sys, 5, 2), // z3
        flow(&sys, 5, 1), // z4
        flow(&sys, 1, 2), // z5
        flow(&sys, 2, 5), // z6
        flow(&sys, 1, 5), // z7
        injection(3),     // z8
        injection(2),     // z9
        flow(&sys, 4, 3), // z10
        injection(4),     // z11
        flow(&sys, 3, 2), // z12
        injection(5),     // z13
        flow(&sys, 2, 1), // z14
    ]
}

/// Builds the case study with an explicit measurement labeling (used by
/// the calibration search).
///
/// # Panics
///
/// Panics unless exactly 14 measurements are supplied.
pub fn five_bus_with_labeling(
    labeling: Vec<MeasurementKind>,
    topology: FiveBusTopology,
) -> AnalysisInput {
    assert_eq!(labeling.len(), 14, "Table II has 14 measurements");
    let measurements = MeasurementSet::new(case5(), labeling);

    // Devices: IEDs 1-8, RTUs 9-12, MTU 13, router 14.
    let mut devices = Vec::new();
    for i in 1..=8 {
        devices.push(Device::new(DeviceId::from_one_based(i), DeviceKind::Ied));
    }
    for i in 9..=12 {
        devices.push(Device::new(DeviceId::from_one_based(i), DeviceKind::Rtu));
    }
    devices.push(Device::new(DeviceId::from_one_based(13), DeviceKind::Mtu));
    devices.push(Device::new(
        DeviceId::from_one_based(14),
        DeviceKind::Router,
    ));

    // Links (Table II lists 13).
    let mut pairs = vec![
        (1, 9),
        (2, 9),
        (3, 9),
        (4, 10),
        (5, 11),
        (6, 11),
        (7, 12),
        (8, 12),
        (10, 11),
        (11, 14),
        (12, 14),
        (14, 13),
    ];
    pairs.push(match topology {
        FiveBusTopology::Fig3 => (9, 14),
        FiveBusTopology::Fig4 => (9, 12),
    });
    let links: Vec<Link> = pairs
        .into_iter()
        .map(|(a, b)| Link::new(DeviceId::from_one_based(a), DeviceId::from_one_based(b)))
        .collect();
    let mut topo = Topology::new(devices, links);

    // Security profiles (the 11 entries of Table II). Profiles bind
    // communicating hosts; the router is transparent, so the RTU↔MTU
    // entries are written for the host pairs.
    let profile = |entries: &[(&str, u32)]| -> Vec<CryptoProfile> {
        entries
            .iter()
            .map(|&(algo, bits)| CryptoProfile::new(algo.parse().unwrap(), bits))
            .collect()
    };
    let security: Vec<(usize, usize, Vec<CryptoProfile>)> = vec![
        (1, 9, profile(&[("hmac", 128)])),
        (2, 9, profile(&[("chap", 64), ("sha2", 128)])),
        (3, 9, profile(&[("chap", 64), ("sha2", 128)])),
        (5, 11, profile(&[("chap", 64), ("sha2", 256)])),
        (6, 11, profile(&[("chap", 64), ("sha2", 256)])),
        (7, 12, profile(&[("chap", 64), ("sha2", 128)])),
        (8, 12, profile(&[("chap", 64), ("sha2", 128)])),
        (9, 13, profile(&[("rsa", 2048), ("aes", 256)])),
        (10, 11, profile(&[("hmac", 128)])),
        (11, 13, profile(&[("rsa", 4096), ("aes", 256)])),
        (12, 13, profile(&[("rsa", 2048), ("aes", 256)])),
    ];
    for (a, b, profiles) in security {
        topo.set_pair_security(
            DeviceId::from_one_based(a),
            DeviceId::from_one_based(b),
            profiles,
        );
    }

    // IED → measurement association (Table II, 1-based).
    let association: [(usize, &[usize]); 8] = [
        (1, &[1, 2]),
        (2, &[3, 5]),
        (3, &[11]),
        (4, &[12]),
        (5, &[7, 9]),
        (6, &[13]),
        (7, &[6, 8, 10]),
        (8, &[14]),
    ];
    let ied_measurements = association
        .iter()
        .map(|&(ied, ms)| {
            (
                DeviceId::from_one_based(ied),
                ms.iter().map(|&m| MeasurementId(m - 1)).collect(),
            )
        })
        .collect();

    AnalysisInput::new(measurements, topo, ied_measurements)
}

/// The Fig 3 case study with the calibrated labeling.
pub fn five_bus_case_study() -> AnalysisInput {
    five_bus_with_labeling(default_labeling(), FiveBusTopology::Fig3)
}

/// The Fig 4 variant (RTU 9 rewired to RTU 12).
pub fn five_bus_fig4() -> AnalysisInput {
    five_bus_with_labeling(default_labeling(), FiveBusTopology::Fig4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_table_ii() {
        let input = five_bus_case_study();
        assert_eq!(input.measurements.len(), 14);
        assert_eq!(input.measurements.num_states(), 5);
        assert_eq!(input.topology.ieds().count(), 8);
        assert_eq!(input.topology.rtus().count(), 4);
        assert_eq!(input.topology.links().len(), 13);
        assert_eq!(input.topology.pair_security_entries().count(), 11);
        assert!(input.topology.validate().is_empty());
    }

    #[test]
    fn fig4_rewires_rtu9() {
        let fig3 = five_bus_case_study();
        let fig4 = five_bus_fig4();
        let has_link = |input: &AnalysisInput, a: usize, b: usize| {
            input.topology.links().iter().any(|l| {
                (l.a.one_based(), l.b.one_based()) == (a, b)
                    || (l.b.one_based(), l.a.one_based()) == (a, b)
            })
        };
        assert!(has_link(&fig3, 9, 14));
        assert!(!has_link(&fig3, 9, 12));
        assert!(!has_link(&fig4, 9, 14));
        assert!(has_link(&fig4, 9, 12));
    }

    #[test]
    fn secured_ieds_are_2_3_5_6_7_8() {
        // Scenario 2's narrative: IED 1 (hmac only) and IED 4 (no profile
        // on 4-10, hmac-only on 10-11) can never deliver securely.
        use crate::bruteforce::DirectEvaluator;
        use std::collections::HashSet;
        let input = five_bus_case_study();
        let eval = DirectEvaluator::new(&input);
        let none = HashSet::new();
        let secured: Vec<usize> = input
            .topology
            .ieds()
            .filter(|d| eval.secured_delivery(d.id(), &none))
            .map(|d| d.id().one_based())
            .collect();
        assert_eq!(secured, vec![2, 3, 5, 6, 7, 8]);
        // But every IED delivers (unsecured) when everything is up.
        let delivering: Vec<usize> = input
            .topology
            .ieds()
            .filter(|d| eval.assured_delivery(d.id(), &none))
            .map(|d| d.id().one_based())
            .collect();
        assert_eq!(delivering, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
