//! Calibration of the Table II measurement numbering.
//!
//! The paper's Jacobian fixes which physical quantity each of the 14
//! measurements is, but the published table is partly illegible. What
//! the paper *does* report unambiguously is a set of verification
//! outcomes (Scenarios 1 and 2). This module scores a candidate
//! numbering against those reported outcomes and provides a local search
//! that recovers a numbering consistent with them. The shipped
//! [`super::default_labeling`] is the result of this search;
//! EXPERIMENTS.md records the residuals.
//!
//! All checks run on the [`DirectEvaluator`] reference semantics —
//! calibration is independent of the SAT pipeline it later validates.

use std::collections::HashSet;

use powergrid::ieee::case5;
use powergrid::{BranchId, BusId, MeasurementKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use scadasim::DeviceId;

use crate::bruteforce::DirectEvaluator;
use crate::casestudy::fivebus::{five_bus_with_labeling, FiveBusTopology};
use crate::input::AnalysisInput;
use crate::spec::Property;

/// One reported outcome and whether the candidate reproduces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetOutcome {
    /// Short name of the paper's claim.
    pub name: &'static str,
    /// Whether the candidate labeling reproduces it.
    pub satisfied: bool,
    /// What the candidate actually produced.
    pub detail: String,
    /// Weight in the search score.
    pub weight: u32,
}

/// The full scorecard of a candidate labeling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalibrationReport {
    /// Individual outcomes.
    pub outcomes: Vec<TargetOutcome>,
}

impl CalibrationReport {
    /// Weighted score (maximum = [`CalibrationReport::max_score`]).
    pub fn score(&self) -> u32 {
        self.outcomes
            .iter()
            .map(|o| if o.satisfied { o.weight } else { 0 })
            .sum()
    }

    /// The best possible score.
    pub fn max_score(&self) -> u32 {
        self.outcomes.iter().map(|o| o.weight).sum()
    }

    /// Whether every target is reproduced.
    pub fn perfect(&self) -> bool {
        self.outcomes.iter().all(|o| o.satisfied)
    }
}

fn ied(one_based: usize) -> DeviceId {
    DeviceId::from_one_based(one_based)
}

/// Exhaustive check that the property holds for every failure set within
/// `(k1, k2)`.
fn resilient(eval: &DirectEvaluator, property: Property, k1: usize, k2: usize) -> bool {
    for_all_budget_sets(k1, k2, |failed| eval.holds(property, 1, failed))
}

/// Enumerates all failure sets with ≤ k1 IEDs (ids 1–8) and ≤ k2 RTUs
/// (ids 9–12); returns whether `check` holds on all of them.
fn for_all_budget_sets(
    k1: usize,
    k2: usize,
    mut check: impl FnMut(&HashSet<DeviceId>) -> bool,
) -> bool {
    let ieds: Vec<DeviceId> = (1..=8).map(ied).collect();
    let rtus: Vec<DeviceId> = (9..=12).map(ied).collect();
    let ied_subsets = subsets_up_to(&ieds, k1);
    let rtu_subsets = subsets_up_to(&rtus, k2);
    for is in &ied_subsets {
        for rs in &rtu_subsets {
            let failed: HashSet<DeviceId> = is.iter().chain(rs.iter()).copied().collect();
            if !check(&failed) {
                return false;
            }
        }
    }
    true
}

fn subsets_up_to(items: &[DeviceId], k: usize) -> Vec<Vec<DeviceId>> {
    let mut out = vec![Vec::new()];
    for size in 1..=k.min(items.len()) {
        let mut idx: Vec<usize> = (0..size).collect();
        loop {
            out.push(idx.iter().map(|&i| items[i]).collect());
            // next combination
            let mut pos = size;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                if idx[pos] != pos + items.len() - size {
                    break;
                }
                if pos == 0 {
                    break;
                }
            }
            if idx[pos] == pos + items.len() - size {
                break;
            }
            idx[pos] += 1;
            for j in (pos + 1)..size {
                idx[j] = idx[j - 1] + 1;
            }
        }
    }
    out
}

/// All *minimal* violating sets within the budget.
fn minimal_vectors(
    eval: &DirectEvaluator,
    property: Property,
    k1: usize,
    k2: usize,
) -> Vec<HashSet<DeviceId>> {
    let mut violating: Vec<HashSet<DeviceId>> = Vec::new();
    for_all_budget_sets(k1, k2, |failed| {
        if eval.violates(property, 1, failed) {
            violating.push(failed.clone());
        }
        true
    });
    violating
        .iter()
        .filter(|v| {
            !violating
                .iter()
                .any(|w| w.len() < v.len() && w.is_subset(v))
        })
        .cloned()
        .collect()
}

/// Largest `k` with `(k, 0)` resiliency.
fn max_ied_only(eval: &DirectEvaluator, property: Property) -> Option<usize> {
    let mut best = None;
    for k in 0..=8 {
        if resilient(eval, property, k, 0) {
            best = Some(k);
        } else {
            break;
        }
    }
    best
}

/// Scores a labeling against every outcome the paper reports.
pub fn evaluate_labeling(labeling: &[MeasurementKind]) -> CalibrationReport {
    let fig3 = five_bus_with_labeling(labeling.to_vec(), FiveBusTopology::Fig3);
    let fig4 = five_bus_with_labeling(labeling.to_vec(), FiveBusTopology::Fig4);
    evaluate_inputs(&fig3, &fig4)
}

fn evaluate_inputs(fig3: &AnalysisInput, fig4: &AnalysisInput) -> CalibrationReport {
    let e3 = DirectEvaluator::new(fig3);
    let e4 = DirectEvaluator::new(fig4);
    let obs = Property::Observability;
    let sec = Property::SecuredObservability;
    let mut outcomes = Vec::new();
    let mut push = |name, satisfied, detail: String, weight| {
        outcomes.push(TargetOutcome {
            name,
            satisfied,
            detail,
            weight,
        });
    };

    // --- Scenario 1, Fig 3 ---
    let r11 = resilient(&e3, obs, 1, 1);
    push("fig3 (1,1)-resilient observable", r11, format!("{r11}"), 3);

    let vector_2_7_11: HashSet<DeviceId> = [ied(2), ied(7), ied(11)].into_iter().collect();
    let v = e3.violates(obs, 1, &vector_2_7_11);
    push(
        "fig3 {IED2, IED7, RTU11} breaks observability",
        v,
        format!("{v}"),
        3,
    );

    let count21 = minimal_vectors(&e3, obs, 2, 1).len();
    push(
        "fig3 nine (2,1) threat vectors",
        count21 == 9,
        format!("{count21}"),
        1,
    );

    let max3 = max_ied_only(&e3, obs);
    push(
        "fig3 tolerates up to 3 IED failures",
        max3 == Some(3),
        format!("{max3:?}"),
        2,
    );

    // --- Scenario 1, Fig 4 ---
    let vector_4_12: HashSet<DeviceId> = [ied(4), ied(12)].into_iter().collect();
    let v = e4.violates(obs, 1, &vector_4_12);
    push(
        "fig4 {IED4, RTU12} breaks observability",
        v,
        format!("{v}"),
        3,
    );

    let rtu12_only: HashSet<DeviceId> = [ied(12)].into_iter().collect();
    let v = e4.violates(obs, 1, &rtu12_only);
    push("fig4 RTU12 alone is fatal", v, format!("{v}"), 2);

    let max4 = max_ied_only(&e4, obs);
    push(
        "fig4 maximally (3,0)-resilient",
        max4 == Some(3),
        format!("{max4:?}"),
        2,
    );

    // --- Scenario 2, Fig 3 (secured) ---
    let vector_3_11: HashSet<DeviceId> = [ied(3), ied(11)].into_iter().collect();
    let v = e3.violates(sec, 1, &vector_3_11);
    push(
        "fig3 {IED3, RTU11} breaks secured observability",
        v,
        format!("{v}"),
        3,
    );

    let count_sec = minimal_vectors(&e3, sec, 1, 1).len();
    push(
        "fig3 five (1,1) secured threat vectors",
        count_sec == 5,
        format!("{count_sec}"),
        1,
    );

    let r10 = resilient(&e3, sec, 1, 0);
    push("fig3 (1,0)-resilient secured", r10, format!("{r10}"), 2);
    let r01 = resilient(&e3, sec, 0, 1);
    push("fig3 (0,1)-resilient secured", r01, format!("{r01}"), 2);

    // --- Scenario 2, Fig 4 (secured) ---
    let vs = minimal_vectors(&e4, sec, 0, 1);
    let only_rtu12 = vs.len() == 1 && vs[0] == rtu12_only;
    push(
        "fig4 single secured threat vector {RTU12}",
        only_rtu12,
        format!("{} vectors", vs.len()),
        2,
    );

    CalibrationReport { outcomes }
}

/// All candidate quantities on the 5-bus system: both flow directions of
/// every line plus every bus injection (19 total).
pub fn candidate_quantities() -> Vec<MeasurementKind> {
    let sys = case5();
    let mut out: Vec<MeasurementKind> = Vec::new();
    for i in 0..sys.num_branches() {
        out.push(MeasurementKind::FlowForward(BranchId(i)));
        out.push(MeasurementKind::FlowBackward(BranchId(i)));
    }
    for b in 0..sys.num_buses() {
        out.push(MeasurementKind::Injection(BusId(b)));
    }
    out
}

/// Hill-climbing search for a labeling maximizing the calibration score.
///
/// Starts from [`super::default_labeling`], tries random swap/replace
/// moves, accepts non-worsening candidates, and restarts from a random
/// labeling when stuck. Returns the best labeling found and its report.
pub fn search(seed: u64, iterations: usize) -> (Vec<MeasurementKind>, CalibrationReport) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = candidate_quantities();

    let mut current = super::default_labeling();
    let mut current_report = evaluate_labeling(&current);
    let mut best = current.clone();
    let mut best_report = current_report.clone();
    let mut since_improvement = 0usize;

    for _ in 0..iterations {
        if best_report.perfect() {
            break;
        }
        let mut candidate = current.clone();
        if rng.random_bool(0.5) {
            // Swap two slots.
            let i = rng.random_range(0..candidate.len());
            let j = rng.random_range(0..candidate.len());
            candidate.swap(i, j);
        } else {
            // Replace a slot with an unused quantity.
            let unused: Vec<MeasurementKind> = pool
                .iter()
                .copied()
                .filter(|q| !candidate.contains(q))
                .collect();
            if !unused.is_empty() {
                let i = rng.random_range(0..candidate.len());
                candidate[i] = unused[rng.random_range(0..unused.len())];
            }
        }
        let report = evaluate_labeling(&candidate);
        if report.score() >= current_report.score() {
            current = candidate;
            current_report = report;
            if current_report.score() > best_report.score() {
                best = current.clone();
                best_report = current_report.clone();
                since_improvement = 0;
                continue;
            }
        }
        since_improvement += 1;
        if since_improvement > 400 {
            // Restart from a random labeling.
            let mut shuffled = pool.clone();
            shuffled.shuffle(&mut rng);
            current = shuffled.into_iter().take(14).collect();
            current_report = evaluate_labeling(&current);
            since_improvement = 0;
        }
    }
    (best, best_report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsets_enumeration_counts() {
        let items: Vec<DeviceId> = (1..=4).map(ied).collect();
        assert_eq!(subsets_up_to(&items, 0).len(), 1);
        assert_eq!(subsets_up_to(&items, 1).len(), 5);
        assert_eq!(subsets_up_to(&items, 2).len(), 11); // 1 + 4 + 6
        assert_eq!(subsets_up_to(&items, 4).len(), 16);
    }

    #[test]
    fn candidate_pool_has_19_quantities() {
        assert_eq!(candidate_quantities().len(), 19);
    }

    #[test]
    fn default_labeling_scores() {
        let report = evaluate_labeling(&super::super::default_labeling());
        // The shipped labeling must reproduce every reported outcome.
        assert!(
            report.perfect(),
            "calibration regressed: {:#?}",
            report
                .outcomes
                .iter()
                .filter(|o| !o.satisfied)
                .collect::<Vec<_>>()
        );
    }
}
