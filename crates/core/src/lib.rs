//! # scada-analyzer — formal SCADA resiliency verification
//!
//! A reproduction of Rahman, Jakaria & Al-Shaer, *Formal Analysis for
//! Dependable Supervisory Control and Data Acquisition in Smart Grids*
//! (DSN 2016): automated verification of
//!
//! * **k-resilient observability** — can the state estimator still
//!   observe the grid when up to `k` field devices (IEDs/RTUs) fail?
//! * **k-resilient secured observability** — same, counting only data
//!   delivered over authenticated, integrity-protected hops;
//! * **(k, r)-resilient bad-data detectability** — does every state
//!   retain ≥ `r + 1` secured measurements, so corrupted readings remain
//!   detectable?
//!
//! Each question is encoded as a *threat search*: a satisfying
//! assignment is a set of device failures violating the property (a
//! threat vector); unsatisfiability certifies resiliency. The paper
//! solves the encoding with Z3; this crate encodes to CNF (Tseitin +
//! cardinality counters from [`boolexpr`]) and solves with the
//! from-scratch CDCL solver in [`satcore`].
//!
//! # Examples
//!
//! Verify the paper's case study and inspect a threat vector:
//!
//! ```
//! use scada_analyzer::casestudy::five_bus_case_study;
//! use scada_analyzer::{Analyzer, Property, ResiliencySpec, Verdict};
//!
//! let input = five_bus_case_study();
//! let mut analyzer = Analyzer::new(&input);
//!
//! // The system is (1,1)-resilient observable …
//! let verdict = analyzer.verify(Property::Observability, ResiliencySpec::split(1, 1));
//! assert!(verdict.is_resilient());
//!
//! // … but not (2,1)-resilient: the solver exhibits a threat vector.
//! match analyzer.verify(Property::Observability, ResiliencySpec::split(2, 1)) {
//!     Verdict::Threat(vector) => {
//!         assert_eq!(vector.ieds.len() + vector.rtus.len(), 3);
//!     }
//!     other => panic!("expected a threat, got {other:?}"),
//! }
//! ```
//!
//! Queries can be resource-bounded ([`QueryLimits`]): a wall-clock
//! deadline, a per-solve conflict budget with escalating retry, and a
//! cooperative interrupt flag. A bounded query that runs out of
//! resources degrades to [`Verdict::Unknown`] instead of hanging — and
//! `Unknown` is never conflated with `Resilient`.

// `deny`, not `forbid`: the service event loop's epoll shim
// (`service::poll::sys`) and the signal hook (`service::signal::sys`)
// are the only modules allowed to opt back in for raw syscalls —
// everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bruteforce;
pub mod casestudy;
pub mod certify;
pub mod encode;
pub mod enumerate;
pub mod fleet;
pub mod ingest;
mod input;
mod maxres;
pub mod obs;
pub mod parallel;
mod patch;
mod pool;
pub mod security_index;
pub mod service;
mod spec;
pub mod synthesis;
mod threat;
mod verify;

pub use certify::{CertFault, Certificate, CertificationLog, CertifyOptions};
pub use encode::{DeltaStats, SearchOutcome};
pub use enumerate::{
    enumerate_threats, enumerate_threats_limited, enumerate_threats_with,
    enumerate_threats_with_limited, ThreatSpace,
};
pub use input::AnalysisInput;
pub use maxres::BudgetAxis;
pub use obs::{JsonlTracer, MetricsRegistry, Obs, TraceEvent, TraceSink};
pub use parallel::{
    par_max_resiliency, par_max_resiliency_certified, par_max_resiliency_limited,
    par_max_resiliency_observed, par_resiliency_frontier, par_resiliency_frontier_certified,
    par_resiliency_frontier_limited, par_resiliency_frontier_observed, verify_batch,
    verify_batch_certified, verify_batch_limited, verify_batch_observed,
};
pub use patch::{ModelPatch, PatchError};
pub use security_index::{SecurityIndexAnalyzer, SecurityIndexDistribution, SecurityIndexReport};
pub use service::{advance_model_hash, model_hash, ModelHash};
pub use spec::{parse_duration, FailureBudget, Property, QueryLimits, ResiliencySpec, RetryPolicy};
pub use synthesis::{
    apply_upgrades, synthesize_upgrades, synthesize_upgrades_certified,
    synthesize_upgrades_observed, upgradable_hops, SynthesisOptions, SynthesisResult, Upgrade,
    UpgradeSuite,
};
pub use threat::ThreatVector;
pub use verify::{Analyzer, Verdict, VerificationReport};
