//! The parallel verification engine.
//!
//! The sweeps this analyzer runs — batches of independent queries,
//! maximum-resiliency searches, `(k1, k2)` frontiers — decompose into
//! per-query subproblems that share no solver state, exactly the
//! decomposition Hendrickx et al. and Sou et al. exploit to make
//! security-index computations tractable at IEEE-118 scale: *the
//! decomposition is the parallelism*.
//!
//! Each worker owns its own [`Analyzer`] (the encoder and solver are
//! single-threaded, `&mut`-stateful structures and are never shared);
//! jobs are distributed work-stealing-style over a shared injector
//! queue ([`crate::pool`]), and results are returned in deterministic
//! input order regardless of scheduling. Sweep shapes early-cancel:
//! once some budget `k` is known non-resilient, all queries at `k' ≥ k`
//! are redundant and are skipped on every worker.
//!
//! **Determinism.** [`verify_batch`] solves every query on a fresh
//! per-query model, so verdicts — including the exhibited threat
//! vectors — are a pure function of `(input, property, spec)` and are
//! bit-identical across `jobs = 1` and `jobs = N`. The sweep searches
//! reuse one analyzer per worker (budgets are assumptions on the
//! incremental encoding); their `Option<usize>` answers are semantic
//! (sat/unsat) and therefore scheduling-independent too.
//!
//! **Failure isolation.** Every job runs under `catch_unwind`: a
//! panicking query records its payload, raises the fleet's interrupt
//! flag (cancelling in-flight sibling solves — they come back
//! `Unknown`, which is discarded with the fleet), and the original
//! panic is re-raised on the calling thread once every worker has
//! drained. One poisoned query never deadlocks the fleet or masks its
//! own root cause behind secondary "poisoned mutex" panics.
//!
//! **Degradation.** The `_limited` variants thread [`QueryLimits`]
//! through every query. In sweeps, an `Unknown` verdict is conservatively
//! treated as *not proven resilient*, so bounded sweep answers are sound
//! lower bounds on the true resiliency (see DESIGN.md, "Degradation
//! semantics").
//!
//! # Examples
//!
//! ```
//! use scada_analyzer::casestudy::five_bus_case_study;
//! use scada_analyzer::parallel::verify_batch;
//! use scada_analyzer::{Property, ResiliencySpec};
//!
//! let input = five_bus_case_study();
//! let queries: Vec<_> = (0..3)
//!     .map(|k| (Property::Observability, ResiliencySpec::total(k)))
//!     .collect();
//! let reports = verify_batch(&input, &queries, 2);
//! assert_eq!(reports.len(), 3);
//! assert!(reports[0].verdict.is_resilient());
//! ```

use std::sync::atomic::AtomicBool;
use std::sync::mpsc;
use std::sync::Arc;

use crate::certify::CertifyOptions;
use crate::input::AnalysisInput;
use crate::maxres::BudgetAxis;
use crate::obs::{Obs, TraceEvent};
use crate::pool::{effective_jobs, run_workers_guarded, CancelBound, FleetGuard, Injector};
use crate::spec::{Property, QueryLimits, ResiliencySpec};
use crate::verify::{Analyzer, VerificationReport};

/// Applies `f` to every item on `jobs` workers, returning results in
/// input order. `jobs = 0` uses all available parallelism; `jobs = 1`
/// runs inline (the serial baseline).
///
/// A panicking call is isolated: siblings finish (or are skipped), then
/// the first panic is re-raised here with its original payload.
///
/// This is the generic fan-out primitive under [`verify_batch`]; the
/// bench harness reuses it to spread whole workloads across cores.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_cancellable(items, jobs, |index, item, _| f(index, item))
}

/// [`par_map`] with fleet cancellation: `f` additionally receives the
/// fleet's shared cancellation flag, for threading into
/// [`QueryLimits::with_interrupt`] so that a panic in one job interrupts
/// sibling solves *in flight* instead of merely skipping queued ones.
///
/// # Panics
///
/// Re-raises the first job panic after the whole fleet has drained.
/// (With a panicking job the fleet is cancelled, so some results never
/// materialize; they are discarded along with the fleet.)
pub fn par_map_cancellable<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &Arc<AtomicBool>) -> R + Sync,
{
    par_map_observed(items, jobs, &Obs::none(), f)
}

/// [`par_map_cancellable`] with fleet observability: each worker reports
/// its jobs run/skipped through `obs` when it drains, and an observed
/// fleet cancellation is traced. Per-query events are the closure's
/// business (thread an [`Obs`] into the analyzers it builds).
pub fn par_map_observed<T, R, F>(items: &[T], jobs: usize, obs: &Obs, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &Arc<AtomicBool>) -> R + Sync,
{
    let jobs = effective_jobs(jobs);
    let injector = Injector::new(0..items.len());
    let guard = FleetGuard::new();
    let cancel = guard.cancel_flag();
    let (sender, receiver) = mpsc::channel::<(usize, R)>();
    run_workers_guarded(jobs, &guard, |worker| {
        let sender = sender.clone();
        let mut ran: u64 = 0;
        while let Some(index) = injector.steal() {
            if guard.cancelled() {
                obs.trace(|| TraceEvent::Interrupted { worker });
                break;
            }
            if let Some(result) = guard.run_job(|| f(index, &items[index], &cancel)) {
                ran += 1;
                sender
                    .send((index, result))
                    .expect("result receiver dropped");
            }
        }
        obs.trace(|| TraceEvent::WorkerDone {
            worker,
            ran,
            skipped: 0,
        });
        obs.count("fleet_jobs", ran);
    });
    drop(sender);
    guard.rethrow();
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (index, result) in receiver {
        debug_assert!(slots[index].is_none(), "job {index} ran twice");
        slots[index] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("missing result slot"))
        .collect()
}

/// Per-query limits for one fleet: the caller's limits, plus the fleet's
/// cancellation flag as interrupt when the caller did not install one of
/// their own.
fn fleet_limits(limits: &QueryLimits, cancel: &Arc<AtomicBool>) -> QueryLimits {
    let per_query = limits.clone();
    if limits.has_interrupt() {
        per_query
    } else {
        per_query.with_interrupt(cancel.clone())
    }
}

/// Verifies a batch of independent queries against one input across
/// `jobs` workers, returning reports in input order.
///
/// Every query is solved on a fresh model, so the reports (verdicts
/// *and* threat vectors) are identical to running each query serially
/// from scratch — only the wall-clock changes with `jobs`.
pub fn verify_batch(
    input: &AnalysisInput,
    queries: &[(Property, ResiliencySpec)],
    jobs: usize,
) -> Vec<VerificationReport> {
    verify_batch_limited(input, queries, jobs, &QueryLimits::none())
}

/// [`verify_batch`] under resource limits: each query gets its own copy
/// of `limits` (deadline, conflict budget, retry policy), and — unless
/// the caller installed an interrupt flag of their own — the fleet's
/// cancellation flag, so a panicking sibling cancels in-flight solves.
/// Queries stopped by a limit report [`crate::Verdict::Unknown`]; the
/// rest of the batch is unaffected.
pub fn verify_batch_limited(
    input: &AnalysisInput,
    queries: &[(Property, ResiliencySpec)],
    jobs: usize,
    limits: &QueryLimits,
) -> Vec<VerificationReport> {
    verify_batch_observed(input, queries, jobs, limits, &Obs::none())
}

/// [`verify_batch_limited`] with observability: fleet events and
/// per-worker drain reports through `obs`, and every per-query analyzer
/// carries `obs` so query-lifecycle events flow too.
pub fn verify_batch_observed(
    input: &AnalysisInput,
    queries: &[(Property, ResiliencySpec)],
    jobs: usize,
    limits: &QueryLimits,
    obs: &Obs,
) -> Vec<VerificationReport> {
    verify_batch_certified(
        input,
        queries,
        jobs,
        limits,
        obs,
        &CertifyOptions::default(),
    )
}

/// [`verify_batch_observed`] with verdict certification: every worker's
/// analyzer independently re-checks its verdicts (see [`crate::certify`])
/// and the certificates land on the returned reports and in
/// `certify.log` (shared across the fleet — workers tally into one log).
pub fn verify_batch_certified(
    input: &AnalysisInput,
    queries: &[(Property, ResiliencySpec)],
    jobs: usize,
    limits: &QueryLimits,
    obs: &Obs,
    certify: &CertifyOptions,
) -> Vec<VerificationReport> {
    obs.trace(|| TraceEvent::FleetStart {
        label: "verify_batch",
        jobs: effective_jobs(jobs),
        items: queries.len(),
    });
    par_map_observed(queries, jobs, obs, |_, &(property, spec), cancel| {
        let per_query = fleet_limits(limits, cancel);
        Analyzer::with_options(input, obs.clone(), certify.clone())
            .verify_with_report_limited(property, spec, &per_query)
    })
}

/// Parallel [`Analyzer::max_resiliency`]: the maximum `k` along `axis`
/// for which the property is `k`-resilient, or `None` if it already
/// fails at `k = 0`.
///
/// All budgets `0..=limit` go into the injector; a worker that proves
/// some `k` non-resilient lowers the shared cancel bound so every
/// pending query at `k' ≥ k` is skipped. The answer equals the serial
/// scan's for *any* property behaviour (not only monotone ones): it is
/// one below the smallest non-resilient budget, with every smaller
/// budget actually verified resilient.
pub fn par_max_resiliency(
    input: &AnalysisInput,
    property: Property,
    axis: BudgetAxis,
    r: usize,
    jobs: usize,
) -> Option<usize> {
    par_max_resiliency_limited(input, property, axis, r, jobs, &QueryLimits::none())
}

/// [`par_max_resiliency`] under resource limits. A budget whose query
/// comes back `Unknown` counts as *not proven resilient* — it stops the
/// sweep exactly like a threat — so the answer is a sound lower bound
/// on the true maximum resiliency (and equals it whenever no query was
/// cut short).
pub fn par_max_resiliency_limited(
    input: &AnalysisInput,
    property: Property,
    axis: BudgetAxis,
    r: usize,
    jobs: usize,
    limits: &QueryLimits,
) -> Option<usize> {
    par_max_resiliency_observed(input, property, axis, r, jobs, limits, &Obs::none())
}

/// [`par_max_resiliency_limited`] with observability: fleet events,
/// cancel-bound cuts, and per-worker drain reports through `obs`, with
/// query-lifecycle events from every worker's analyzer.
#[allow(clippy::too_many_arguments)]
pub fn par_max_resiliency_observed(
    input: &AnalysisInput,
    property: Property,
    axis: BudgetAxis,
    r: usize,
    jobs: usize,
    limits: &QueryLimits,
    obs: &Obs,
) -> Option<usize> {
    par_max_resiliency_certified(
        input,
        property,
        axis,
        r,
        jobs,
        limits,
        obs,
        &CertifyOptions::default(),
    )
}

/// [`par_max_resiliency_observed`] with verdict certification: every
/// worker runs a certifying analyzer; certificates tally into
/// `certify.log`.
#[allow(clippy::too_many_arguments)]
pub fn par_max_resiliency_certified(
    input: &AnalysisInput,
    property: Property,
    axis: BudgetAxis,
    r: usize,
    jobs: usize,
    limits: &QueryLimits,
    obs: &Obs,
    certify: &CertifyOptions,
) -> Option<usize> {
    let jobs = effective_jobs(jobs);
    let limit = axis.limit(input);
    obs.trace(|| TraceEvent::FleetStart {
        label: "max_resiliency",
        jobs,
        items: limit + 1,
    });
    let injector = Injector::new(0..=limit);
    let bound = CancelBound::unbounded();
    let guard = FleetGuard::new();
    let cancel = guard.cancel_flag();
    run_workers_guarded(jobs, &guard, |worker| {
        let mut analyzer = Analyzer::with_options(input, obs.clone(), certify.clone());
        let mut ran: u64 = 0;
        let mut skipped: u64 = 0;
        while let Some(k) = injector.steal() {
            if guard.cancelled() {
                obs.trace(|| TraceEvent::Interrupted { worker });
                break;
            }
            if k >= bound.get() {
                skipped += 1;
                continue;
            }
            let per_query = fleet_limits(limits, &cancel);
            let Some(verdict) =
                guard.run_job(|| analyzer.verify_limited(property, axis.spec(k, r), &per_query))
            else {
                // This worker's analyzer may be mid-query after a panic;
                // stop using it. The fleet is cancelled either way.
                break;
            };
            ran += 1;
            if !verdict.is_resilient() {
                bound.lower_to(k);
                obs.trace(|| TraceEvent::CancelCut { worker, bound: k });
                obs.count("cancel_cuts", 1);
            }
        }
        obs.trace(|| TraceEvent::WorkerDone {
            worker,
            ran,
            skipped,
        });
        obs.count("fleet_jobs", ran);
        obs.count("fleet_skipped", skipped);
    });
    guard.rethrow();
    match bound.get() {
        0 => None,
        usize::MAX => Some(limit),
        first_failing => Some(first_failing - 1),
    }
}

/// Parallel [`Analyzer::resiliency_frontier`]: for each IED budget `k1`
/// from 0 up, the largest RTU budget `k2` keeping the system resilient
/// (`None` once no `k2` works), ending at the first `k1` whose row has
/// no resilient `k2` — byte-for-byte the serial frontier.
///
/// Rows are the unit of work: each worker sweeps whole `k1` rows with
/// its own incremental analyzer, and the first row proven hopeless
/// (`best = None`) early-cancels all higher rows.
pub fn par_resiliency_frontier(
    input: &AnalysisInput,
    property: Property,
    r: usize,
    jobs: usize,
) -> Vec<(usize, Option<usize>)> {
    par_resiliency_frontier_limited(input, property, r, jobs, &QueryLimits::none())
}

/// [`par_resiliency_frontier`] under resource limits. Within a row, an
/// `Unknown` verdict ends the row like a threat (the reported `k2` is a
/// sound lower bound); a row whose `k2 = 0` query is `Unknown` counts as
/// hopeless and ends the frontier.
pub fn par_resiliency_frontier_limited(
    input: &AnalysisInput,
    property: Property,
    r: usize,
    jobs: usize,
    limits: &QueryLimits,
) -> Vec<(usize, Option<usize>)> {
    par_resiliency_frontier_observed(input, property, r, jobs, limits, &Obs::none())
}

/// [`par_resiliency_frontier_limited`] with observability: fleet events,
/// cutoff cuts, and per-worker drain reports through `obs`, with
/// query-lifecycle events from every worker's analyzer.
pub fn par_resiliency_frontier_observed(
    input: &AnalysisInput,
    property: Property,
    r: usize,
    jobs: usize,
    limits: &QueryLimits,
    obs: &Obs,
) -> Vec<(usize, Option<usize>)> {
    par_resiliency_frontier_certified(
        input,
        property,
        r,
        jobs,
        limits,
        obs,
        &CertifyOptions::default(),
    )
}

/// [`par_resiliency_frontier_observed`] with verdict certification:
/// every worker runs a certifying analyzer; certificates tally into
/// `certify.log`.
#[allow(clippy::too_many_arguments)]
pub fn par_resiliency_frontier_certified(
    input: &AnalysisInput,
    property: Property,
    r: usize,
    jobs: usize,
    limits: &QueryLimits,
    obs: &Obs,
    certify: &CertifyOptions,
) -> Vec<(usize, Option<usize>)> {
    let jobs = effective_jobs(jobs);
    let max_ieds = input.topology.ieds().count();
    let max_rtus = input.topology.rtus().count();
    obs.trace(|| TraceEvent::FleetStart {
        label: "resiliency_frontier",
        jobs,
        items: max_ieds + 1,
    });
    let injector = Injector::new(0..=max_ieds);
    // The smallest k1 whose row came out all-threat; rows above it are
    // outside the serial output and need not be computed.
    let cutoff = CancelBound::unbounded();
    let guard = FleetGuard::new();
    let cancel = guard.cancel_flag();
    let (sender, receiver) = mpsc::channel::<(usize, Option<usize>)>();
    run_workers_guarded(jobs, &guard, |worker| {
        let sender = sender.clone();
        let mut analyzer = Analyzer::with_options(input, obs.clone(), certify.clone());
        let mut ran: u64 = 0;
        let mut skipped: u64 = 0;
        while let Some(k1) = injector.steal() {
            if guard.cancelled() {
                obs.trace(|| TraceEvent::Interrupted { worker });
                break;
            }
            if k1 > cutoff.get() {
                skipped += 1;
                continue;
            }
            let row = guard.run_job(|| {
                let mut best: Option<usize> = None;
                for k2 in 0..=max_rtus {
                    let spec = ResiliencySpec::split(k1, k2).with_corrupted(r);
                    let per_query = fleet_limits(limits, &cancel);
                    if analyzer
                        .verify_limited(property, spec, &per_query)
                        .is_resilient()
                    {
                        best = Some(k2);
                    } else {
                        break;
                    }
                }
                best
            });
            let Some(best) = row else { break };
            ran += 1;
            if best.is_none() {
                cutoff.lower_to(k1);
                obs.trace(|| TraceEvent::CancelCut { worker, bound: k1 });
                obs.count("cancel_cuts", 1);
            }
            sender.send((k1, best)).expect("frontier receiver dropped");
        }
        obs.trace(|| TraceEvent::WorkerDone {
            worker,
            ran,
            skipped,
        });
        obs.count("fleet_jobs", ran);
        obs.count("fleet_skipped", skipped);
    });
    drop(sender);
    guard.rethrow();
    let mut rows: Vec<Option<Option<usize>>> = vec![None; max_ieds + 1];
    for (k1, best) in receiver {
        rows[k1] = Some(best);
    }
    // Keep rows up to and including the first all-threat one, exactly
    // like the serial loop's early exit.
    let end = cutoff.get().min(max_ieds);
    (0..=end)
        .map(|k1| (k1, rows[k1].expect("row below cutoff not computed")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casestudy::five_bus_case_study;

    fn all_queries() -> Vec<(Property, ResiliencySpec)> {
        let mut queries = Vec::new();
        for property in [
            Property::Observability,
            Property::SecuredObservability,
            Property::BadDataDetectability,
        ] {
            for k in 0..4 {
                queries.push((property, ResiliencySpec::total(k)));
            }
            for (k1, k2) in [(0, 0), (1, 0), (0, 1), (1, 1), (2, 1)] {
                queries.push((property, ResiliencySpec::split(k1, k2)));
            }
        }
        queries
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        for jobs in [1, 2, 8] {
            let doubled = par_map(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn batch_matches_serial_verdicts_in_order() {
        let input = five_bus_case_study();
        let queries = all_queries();
        let serial: Vec<_> = queries
            .iter()
            .map(|&(p, s)| Analyzer::new(&input).verify_with_report(p, s))
            .collect();
        for jobs in [1, 2, 8] {
            let parallel = verify_batch(&input, &queries, jobs);
            assert_eq!(parallel.len(), serial.len());
            for (p, s) in parallel.iter().zip(&serial) {
                assert_eq!(p.property, s.property);
                assert_eq!(p.spec, s.spec);
                assert_eq!(p.verdict, s.verdict, "jobs-dependent verdict at {}", p.spec);
            }
        }
    }

    #[test]
    fn max_resiliency_matches_serial_on_every_axis() {
        let input = five_bus_case_study();
        for property in [Property::Observability, Property::SecuredObservability] {
            for axis in [
                BudgetAxis::IedsOnly,
                BudgetAxis::RtusOnly,
                BudgetAxis::Total,
            ] {
                let serial = Analyzer::new(&input).max_resiliency(property, axis, 1);
                for jobs in [1, 2, 8] {
                    assert_eq!(
                        par_max_resiliency(&input, property, axis, 1, jobs),
                        serial,
                        "{property} along {axis:?} with jobs={jobs}"
                    );
                }
            }
        }
    }

    #[test]
    fn frontier_matches_serial() {
        let input = five_bus_case_study();
        for property in [Property::Observability, Property::SecuredObservability] {
            let serial = Analyzer::new(&input).resiliency_frontier(property, 1);
            for jobs in [1, 2, 8] {
                assert_eq!(
                    par_resiliency_frontier(&input, property, 1, jobs),
                    serial,
                    "{property} with jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        let input = five_bus_case_study();
        let queries = [(Property::Observability, ResiliencySpec::total(1))];
        let reports = verify_batch(&input, &queries, 0);
        assert!(reports[0].verdict.is_resilient());
    }
}
