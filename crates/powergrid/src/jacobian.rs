//! The DC measurement Jacobian.
//!
//! Under the DC power-flow model, measurements are linear in the bus
//! voltage angles: `z = H·θ + e`. Row `Z` of `H` is the paper's mapping
//! from measurement `Z` to the states in `StateSet_Z`; the non-zero
//! pattern drives the Boolean observability abstraction, the values drive
//! the numeric rank test and state estimation.

use crate::linalg::Matrix;
use crate::measurement::{MeasurementKind, MeasurementSet};

/// Builds the full `m × n` Jacobian of a measurement set
/// (`n` = number of buses; no reference column removed).
pub fn jacobian(ms: &MeasurementSet) -> Matrix {
    let n = ms.system().num_buses();
    let mut h = Matrix::zeros(ms.len(), n);
    for id in ms.ids() {
        let row = id.index();
        match ms.kind(id) {
            MeasurementKind::FlowForward(b) => {
                let br = ms.system().branch(b);
                h[(row, br.from.index())] = br.susceptance;
                h[(row, br.to.index())] = -br.susceptance;
            }
            MeasurementKind::FlowBackward(b) => {
                let br = ms.system().branch(b);
                h[(row, br.from.index())] = -br.susceptance;
                h[(row, br.to.index())] = br.susceptance;
            }
            MeasurementKind::Injection(bus) => {
                // Injection = Σ flows out of the bus.
                for &bid in ms.system().branches_at(bus) {
                    let br = ms.system().branch(bid);
                    let other = br.other_end(bus);
                    h[(row, bus.index())] += br.susceptance;
                    h[(row, other.index())] -= br.susceptance;
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ieee::case5;
    use crate::measurement::MeasurementId;

    #[test]
    fn sparsity_matches_state_sets() {
        let ms = MeasurementSet::full(case5());
        let h = jacobian(&ms);
        for id in ms.ids() {
            let expected = ms.state_set(id);
            let actual: Vec<usize> = (0..h.cols())
                .filter(|&j| h[(id.index(), j)].abs() > 1e-12)
                .collect();
            assert_eq!(actual, expected, "row {id}");
        }
    }

    #[test]
    fn rows_sum_to_zero() {
        // Every DC Jacobian row sums to zero (angles are relative).
        let ms = MeasurementSet::full(case5());
        let h = jacobian(&ms);
        for i in 0..h.rows() {
            let s: f64 = (0..h.cols()).map(|j| h[(i, j)]).sum();
            assert!(s.abs() < 1e-9, "row {i} sums to {s}");
        }
    }

    #[test]
    fn forward_and_backward_are_negatives() {
        let ms = MeasurementSet::full(case5());
        let h = jacobian(&ms);
        let lines = ms.system().num_branches();
        for l in 0..lines {
            let fwd = MeasurementId(l);
            let bwd = MeasurementId(lines + l);
            for j in 0..h.cols() {
                assert!(
                    (h[(fwd.index(), j)] + h[(bwd.index(), j)]).abs() < 1e-12,
                    "line {l} col {j}"
                );
            }
        }
    }

    #[test]
    fn bus2_injection_row_matches_paper() {
        // The paper's Table II bus-2 injection row:
        // [-16.9, 33.37, -5.05, -5.67, -5.75].
        let ms = MeasurementSet::full(case5());
        let h = jacobian(&ms);
        let inj2 = ms
            .ids()
            .find(|&id| matches!(ms.kind(id), MeasurementKind::Injection(b) if b.index() == 1))
            .unwrap();
        let expected = [-16.90, 33.37, -5.05, -5.67, -5.75];
        for (j, want) in expected.iter().enumerate() {
            assert!(
                (h[(inj2.index(), j)] - want).abs() < 0.01,
                "col {j}: got {} want {want}",
                h[(inj2.index(), j)]
            );
        }
    }
}
