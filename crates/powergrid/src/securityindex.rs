//! Security index by min-cut (Hendrickx et al., arXiv:1204.6174).
//!
//! The *security index* of measurement `k` is the size of the sparsest
//! undetectable false-data attack that touches `k`: a state perturbation
//! `c` whose measurement image `a = H·c` has `a_k ≠ 0`, minimizing
//! `‖a‖₀`. For the DC measurement model, where every Jacobian entry has
//! the sign structure of the incidence matrix and all susceptances are
//! positive, Hendrickx et al. prove *binary* perturbations
//! (`c ∈ {0, 1}^buses`) are optimal: an injection's attack component is
//! a same-sign sum over its cut incident lines, so no cancellation is
//! possible. The problem becomes combinatorial — choose a bus set `S`
//! (`c_i = 1 ⟺ i ∈ S`) and pay
//!
//! * one per *measured flow* on a line with exactly one endpoint in `S`
//!   (its flow changes), and
//! * one per *measured injection* at a bus incident to such a cut line
//!   (its net injection changes),
//!
//! minimized over all `S` separating the target's endpoints. That is a
//! minimum `s`–`t` cut, computed here by max-flow over a gadget graph:
//!
//! * each line carries antiparallel arcs with capacity = its measured
//!   flow count (0, 1, or 2);
//! * each injection-measured bus `v` gets two auxiliary nodes charging
//!   one unit exactly when `v` lies on the cut boundary: `p_v` with
//!   `v → p_v` (capacity 1) and `p_v → u` (∞) for each neighbor `u`
//!   (fires when `v ∈ S` has a neighbor outside), and `q_v` with
//!   `q_v → v` (capacity 1) and `u → q_v` (∞) for each neighbor
//!   (fires when `v ∉ S` has a neighbor inside).
//!
//! A flow-target on line `(x, y)` forces `x ∈ S, y ∉ S` (one orientation
//! suffices — the cost is invariant under complementing `S`); an
//! injection-target at `v` needs *some* incident line cut, so it is the
//! minimum over `v`'s neighbors of the corresponding flow cut.
//!
//! This module is the SAT-free half of the engine's cross-validated
//! pair; `scada_analyzer::security_index` implements the same quantity
//! by cardinality-minimizing SAT and the two must agree everywhere.

use crate::measurement::{MeasurementId, MeasurementKind, MeasurementSet};
use crate::system::{BranchId, BusId};

/// One measurement's security index with an optimal attack witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityIndex {
    /// `‖a‖₀` of the sparsest undetectable attack touching the target
    /// (counts the target itself, so always ≥ 1).
    pub index: usize,
    /// The attacked bus set `S` (the binary perturbation's support).
    pub attack_buses: Vec<BusId>,
    /// The measurements the optimal attack perturbs (the target is one
    /// of them); `affected.len() == index`.
    pub affected: Vec<MeasurementId>,
}

/// Arc of the gadget flow network (paired with its reverse).
#[derive(Debug, Clone, Copy)]
struct Arc {
    to: usize,
    cap: usize,
    /// Index of the reverse arc in `to`'s adjacency list.
    rev: usize,
}

/// A unit-ish-capacity flow network with Dinic's algorithm.
#[derive(Debug, Clone)]
struct FlowNet {
    adj: Vec<Vec<Arc>>,
}

impl FlowNet {
    fn new(nodes: usize) -> FlowNet {
        FlowNet {
            adj: vec![Vec::new(); nodes],
        }
    }

    fn add_arc(&mut self, from: usize, to: usize, cap: usize) {
        let rev_from = self.adj[to].len();
        let rev_to = self.adj[from].len();
        self.adj[from].push(Arc {
            to,
            cap,
            rev: rev_from,
        });
        self.adj[to].push(Arc {
            to: from,
            cap: 0,
            rev: rev_to,
        });
    }

    /// BFS level graph; `None` when `t` is unreachable in the residual.
    fn levels(&self, s: usize, t: usize) -> Option<Vec<u32>> {
        let mut level = vec![u32::MAX; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for arc in &self.adj[u] {
                if arc.cap > 0 && level[arc.to] == u32::MAX {
                    level[arc.to] = level[u] + 1;
                    queue.push_back(arc.to);
                }
            }
        }
        (level[t] != u32::MAX).then_some(level)
    }

    /// DFS blocking-flow step along the level graph.
    fn augment(
        &mut self,
        u: usize,
        t: usize,
        pushed: usize,
        level: &[u32],
        iter: &mut [usize],
    ) -> usize {
        if u == t {
            return pushed;
        }
        while iter[u] < self.adj[u].len() {
            let Arc { to, cap, rev } = self.adj[u][iter[u]];
            if cap > 0 && level[to] == level[u] + 1 {
                let flowed = self.augment(to, t, pushed.min(cap), level, iter);
                if flowed > 0 {
                    self.adj[u][iter[u]].cap -= flowed;
                    self.adj[to][rev].cap += flowed;
                    return flowed;
                }
            }
            iter[u] += 1;
        }
        0
    }

    /// Max flow from `s` to `t` (equivalently, the min-cut value).
    fn max_flow(&mut self, s: usize, t: usize) -> usize {
        let mut flow = 0;
        while let Some(level) = self.levels(s, t) {
            let mut iter = vec![0usize; self.adj.len()];
            loop {
                let pushed = self.augment(s, t, usize::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    /// Nodes reachable from `s` in the residual graph (the min cut's
    /// source side, once `max_flow` has run).
    fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            for arc in &self.adj[u] {
                if arc.cap > 0 && !seen[arc.to] {
                    seen[arc.to] = true;
                    stack.push(arc.to);
                }
            }
        }
        seen
    }
}

/// The measurement structure the cuts are priced against.
struct Sparsity {
    /// Measured flow count per branch (0, 1, or 2).
    flow_weight: Vec<usize>,
    /// Whether each bus's injection is measured.
    injection: Vec<bool>,
}

impl Sparsity {
    fn of(ms: &MeasurementSet) -> Sparsity {
        let sys = ms.system();
        let mut flow_weight = vec![0usize; sys.num_branches()];
        let mut injection = vec![false; sys.num_buses()];
        for id in ms.ids() {
            match ms.kind(id) {
                MeasurementKind::FlowForward(b) | MeasurementKind::FlowBackward(b) => {
                    flow_weight[b.index()] += 1;
                }
                MeasurementKind::Injection(v) => injection[v.index()] = true,
            }
        }
        Sparsity {
            flow_weight,
            injection,
        }
    }
}

/// Builds the gadget network for one measurement set. Node layout:
/// buses `0..B`, then a `p_v`/`q_v` pair per injection-measured bus.
fn build_network(ms: &MeasurementSet, sparsity: &Sparsity) -> FlowNet {
    let sys = ms.system();
    let buses = sys.num_buses();
    let measured_injections = sparsity.injection.iter().filter(|&&i| i).count();
    let mut net = FlowNet::new(buses + 2 * measured_injections);
    // Any capacity strictly above the largest finite cut acts as ∞.
    let infinite = ms.len() + 1;

    for (bi, branch) in sys.branches().iter().enumerate() {
        let w = sparsity.flow_weight[bi];
        if w > 0 {
            net.add_arc(branch.from.index(), branch.to.index(), w);
            net.add_arc(branch.to.index(), branch.from.index(), w);
        }
    }
    let mut aux = buses;
    for v in sys.buses() {
        if !sparsity.injection[v.index()] {
            continue;
        }
        let (p, q) = (aux, aux + 1);
        aux += 2;
        net.add_arc(v.index(), p, 1);
        net.add_arc(q, v.index(), 1);
        for u in sys.neighbors(v) {
            net.add_arc(p, u.index(), infinite);
            net.add_arc(u.index(), q, infinite);
        }
    }
    net
}

/// The measurements perturbed by the binary attack `S` (bus support),
/// priced directly from the measurement list — this is the cut value
/// recomputed without the flow network, used to cross-check the witness.
fn affected_by(ms: &MeasurementSet, in_s: &[bool]) -> Vec<MeasurementId> {
    let sys = ms.system();
    let cut = |b: BranchId| {
        let branch = sys.branch(b);
        in_s[branch.from.index()] != in_s[branch.to.index()]
    };
    ms.ids()
        .filter(|&id| match ms.kind(id) {
            MeasurementKind::FlowForward(b) | MeasurementKind::FlowBackward(b) => cut(b),
            MeasurementKind::Injection(v) => sys.branches_at(v).iter().any(|&b| cut(b)),
        })
        .collect()
}

/// Min cut separating `s` from `t`, with the witness bus set.
fn cut_between(ms: &MeasurementSet, sparsity: &Sparsity, s: BusId, t: BusId) -> (usize, Vec<bool>) {
    let mut net = build_network(ms, sparsity);
    let value = net.max_flow(s.index(), t.index());
    let reachable = net.residual_reachable(s.index());
    let in_s: Vec<bool> = (0..ms.system().num_buses()).map(|b| reachable[b]).collect();
    (value, in_s)
}

/// The security index of one measurement, by min-cut.
///
/// # Panics
///
/// Panics if `target` is out of range for `ms`, or if the witness cut
/// disagrees with the max-flow value (which would mean the gadget
/// construction is wrong — checked on every query by design).
pub fn security_index(ms: &MeasurementSet, target: MeasurementId) -> SecurityIndex {
    let sys = ms.system();
    let best = match ms.kind(target) {
        MeasurementKind::FlowForward(b) | MeasurementKind::FlowBackward(b) => {
            let branch = sys.branch(b);
            let sparsity = Sparsity::of(ms);
            cut_between(ms, &sparsity, branch.from, branch.to)
        }
        MeasurementKind::Injection(v) => {
            // The injection changes iff some incident line is cut:
            // minimize over which neighbor ends up across the cut.
            let sparsity = Sparsity::of(ms);
            sys.neighbors(v)
                .into_iter()
                .map(|u| cut_between(ms, &sparsity, v, u))
                .min_by_key(|(value, _)| *value)
                .expect("injection-measured bus with no incident line")
        }
    };
    let (value, in_s) = best;
    let affected = affected_by(ms, &in_s);
    assert_eq!(
        affected.len(),
        value,
        "min-cut witness prices differently from the max-flow value for {target}"
    );
    assert!(
        affected.contains(&target),
        "min-cut witness does not touch the target {target}"
    );
    let attack_buses = (0..sys.num_buses())
        .filter(|&b| in_s[b])
        .map(BusId)
        .collect();
    SecurityIndex {
        index: value,
        attack_buses,
        affected,
    }
}

/// The full index distribution: the security index of every measurement
/// in `ms`, in measurement order.
pub fn security_indices(ms: &MeasurementSet) -> Vec<usize> {
    ms.ids().map(|id| security_index(ms, id).index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ieee::{case5, ieee14};
    use crate::system::{Branch, PowerSystem};

    /// A path 1–2–3 with both flows on each line and all injections.
    fn path3_full() -> MeasurementSet {
        let sys = PowerSystem::new(
            "path3",
            3,
            vec![
                Branch::new(BusId(0), BusId(1), 1.0),
                Branch::new(BusId(1), BusId(2), 1.0),
            ],
        );
        MeasurementSet::full(sys)
    }

    #[test]
    fn path_indices_by_hand() {
        let ms = path3_full();
        // Measurements: P(l1) P(l2) P'(l1) P'(l2) inj1 inj2 inj3.
        // Attacking line 1 alone (S = {bus1}): both its flows change,
        // plus injections at buses 1 and 2 → 4. Cutting both lines
        // (S = {bus2}) costs 4 + all three injections = 7, and cutting
        // nothing affects nothing, so 4 is optimal for every target
        // touching line 1.
        let l1_fwd = MeasurementId(0);
        let got = security_index(&ms, l1_fwd);
        assert_eq!(got.index, 4);
        assert_eq!(got.affected.len(), 4);
        assert!(got.affected.contains(&l1_fwd));
        // The end-bus injection shares line 1's optimum; the middle
        // injection can pick either line, also 4.
        for inj in [MeasurementId(4), MeasurementId(5), MeasurementId(6)] {
            assert_eq!(security_index(&ms, inj).index, 4, "{inj}");
        }
    }

    #[test]
    fn flow_only_indices_are_edge_connectivities() {
        // With no injections, the cost of S is just the number of
        // measured-flow arcs cut: for a triangle with one flow per
        // line, separating any two buses costs exactly 2.
        let sys = PowerSystem::new(
            "triangle",
            3,
            vec![
                Branch::new(BusId(0), BusId(1), 1.0),
                Branch::new(BusId(1), BusId(2), 1.0),
                Branch::new(BusId(0), BusId(2), 1.0),
            ],
        );
        let kinds = (0..3).map(|i| MeasurementKind::FlowForward(BranchId(i)));
        let ms = MeasurementSet::new(sys, kinds.collect());
        for id in ms.ids() {
            assert_eq!(security_index(&ms, id).index, 2, "{id}");
        }
    }

    #[test]
    fn unmeasured_lines_are_free_to_cut() {
        // Square 1-2-3-4-1; only line 1-2 measured. Cutting around the
        // square's other lines costs nothing, so the index is 1.
        let sys = PowerSystem::new(
            "square",
            4,
            vec![
                Branch::new(BusId(0), BusId(1), 1.0),
                Branch::new(BusId(1), BusId(2), 1.0),
                Branch::new(BusId(2), BusId(3), 1.0),
                Branch::new(BusId(3), BusId(0), 1.0),
            ],
        );
        let ms = MeasurementSet::new(sys, vec![MeasurementKind::FlowForward(BranchId(0))]);
        let got = security_index(&ms, MeasurementId(0));
        assert_eq!(got.index, 1);
        assert_eq!(got.affected, vec![MeasurementId(0)]);
    }

    #[test]
    fn witness_invariants_hold_on_ieee_cases() {
        for sys in [case5(), ieee14()] {
            let ms = MeasurementSet::full(sys);
            let m = ms.len();
            for id in ms.ids() {
                let got = security_index(&ms, id);
                assert!(got.index >= 1, "{id} index 0");
                assert!(got.index <= m, "{id} index above m");
                assert!(got.affected.contains(&id), "{id} not in own attack");
                assert!(!got.attack_buses.is_empty(), "{id} empty support");
            }
        }
    }

    #[test]
    fn forward_and_backward_flows_share_an_index() {
        let ms = MeasurementSet::full(ieee14());
        let branches = ms.system().num_branches();
        let all = security_indices(&ms);
        for b in 0..branches {
            // full() lays out forwards then backwards, branch order.
            assert_eq!(all[b], all[branches + b], "line{}", b + 1);
        }
    }
}
