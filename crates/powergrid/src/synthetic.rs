//! Synthetic "IEEE-sized" power networks.
//!
//! The paper's scalability evaluation runs on IEEE 14/30/57/118-bus test
//! systems. This repo embeds the real 14-bus data ([`crate::ieee`]); the
//! larger sizes are generated here with the same bus/branch counts and
//! the structural property the paper highlights (§V-B): the average
//! nodal degree of power grids stays ≈ 3 regardless of size. Generation
//! is deterministic in the seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::system::{Branch, BusId, PowerSystem};

/// Branch counts of the standard IEEE test cases.
const IEEE_SIZES: [(usize, usize); 4] = [(14, 20), (30, 41), (57, 80), (118, 186)];

/// Generates a connected random power network.
///
/// A random spanning tree guarantees connectivity; the remaining
/// branches are random chords with a per-bus degree cap of 9 (IEEE
/// systems max out around there). Susceptances are uniform in [2, 26],
/// the range spanned by the IEEE 14-bus lines.
///
/// # Panics
///
/// Panics if `n_branches < n_buses − 1` (a connected network needs a
/// spanning tree) or the branch count exceeds what the degree cap and
/// simple-graph constraint allow.
pub fn synthetic_system(
    name: impl Into<String>,
    n_buses: usize,
    n_branches: usize,
    seed: u64,
) -> PowerSystem {
    assert!(n_buses >= 2, "need at least two buses");
    assert!(
        n_branches >= n_buses - 1,
        "connected network needs at least {} branches",
        n_buses - 1
    );
    assert!(
        n_branches <= n_buses * (n_buses - 1) / 2,
        "too many branches for a simple graph"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut degree = vec![0usize; n_buses];
    let mut used = std::collections::HashSet::new();
    let mut branches = Vec::with_capacity(n_branches);
    let add = |a: usize,
               b: usize,
               rng: &mut StdRng,
               degree: &mut Vec<usize>,
               used: &mut std::collections::HashSet<(usize, usize)>,
               branches: &mut Vec<Branch>| {
        let key = (a.min(b), a.max(b));
        if a == b || used.contains(&key) {
            return false;
        }
        used.insert(key);
        degree[a] += 1;
        degree[b] += 1;
        let susceptance = rng.random_range(2.0..26.0);
        branches.push(Branch::new(BusId(a), BusId(b), susceptance));
        true
    };

    // Spanning tree: each new bus attaches to a random earlier bus,
    // preferring recent buses to produce the chain-with-branches shape of
    // real transmission grids.
    for b in 1..n_buses {
        let window = 8.min(b);
        let lo = b - window;
        let parent = rng.random_range(lo..b);
        let ok = add(parent, b, &mut rng, &mut degree, &mut used, &mut branches);
        debug_assert!(ok);
    }
    // Chords.
    const DEGREE_CAP: usize = 9;
    let mut attempts = 0;
    while branches.len() < n_branches {
        attempts += 1;
        assert!(
            attempts < 200 * n_branches,
            "could not place {n_branches} branches under the degree cap"
        );
        let a = rng.random_range(0..n_buses);
        // Mostly local chords (short transmission corridors), sometimes
        // long-range ties.
        let b = if rng.random_range(0..4) == 0 {
            rng.random_range(0..n_buses)
        } else {
            let span = 6.min(n_buses - 1);
            let offset = rng.random_range(1..=span);
            if rng.random_bool(0.5) {
                (a + offset) % n_buses
            } else {
                (a + n_buses - offset) % n_buses
            }
        };
        if degree[a] >= DEGREE_CAP || degree[b] >= DEGREE_CAP {
            continue;
        }
        add(a, b, &mut rng, &mut degree, &mut used, &mut branches);
    }
    PowerSystem::new(name, n_buses, branches)
}

/// A synthetic system with the bus/branch counts of the named IEEE test
/// case (30, 57, or 118 buses; for 14, prefer the real
/// [`crate::ieee::ieee14`]).
///
/// # Panics
///
/// Panics if `n_buses` is not one of 14, 30, 57, 118.
pub fn ieee_sized(n_buses: usize, seed: u64) -> PowerSystem {
    let &(buses, branches) = IEEE_SIZES
        .iter()
        .find(|&&(b, _)| b == n_buses)
        .unwrap_or_else(|| panic!("no IEEE test case with {n_buses} buses"));
    synthetic_system(format!("ieee{buses}-like"), buses, branches, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_systems_are_connected_simple_and_sized() {
        for &(buses, branches) in &IEEE_SIZES {
            for seed in 0..3 {
                let s = ieee_sized(buses, seed);
                assert_eq!(s.num_buses(), buses);
                assert_eq!(s.num_branches(), branches);
                assert!(s.is_connected(), "seed {seed} size {buses}");
            }
        }
    }

    #[test]
    fn average_degree_is_gridlike() {
        for &(buses, _) in &IEEE_SIZES {
            let s = ieee_sized(buses, 1);
            let d = s.average_degree();
            assert!(
                (2.0..4.0).contains(&d),
                "average degree {d} not grid-like for {buses} buses"
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = synthetic_system("a", 30, 41, 5);
        let b = synthetic_system("b", 30, 41, 5);
        assert_eq!(a.branches(), b.branches());
        let c = synthetic_system("c", 30, 41, 6);
        assert_ne!(a.branches(), c.branches());
    }

    #[test]
    fn degree_cap_respected() {
        let s = synthetic_system("cap", 57, 80, 9);
        for b in s.buses() {
            assert!(s.degree(b) <= 9, "{b} exceeds degree cap");
        }
    }

    #[test]
    #[should_panic(expected = "no IEEE test case")]
    fn unknown_size_rejected() {
        ieee_sized(99, 0);
    }

    #[test]
    #[should_panic(expected = "connected network")]
    fn too_few_branches_rejected() {
        synthetic_system("bad", 10, 5, 0);
    }
}
