//! Power network topology: buses and transmission lines.

use std::fmt;

/// A bus (node) in the power network, identified by a dense 0-based index.
///
/// Display uses the 1-based numbering of the IEEE test cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BusId(pub usize);

impl BusId {
    /// Creates a bus id from the 1-based numbering used by the IEEE test
    /// cases and the paper.
    ///
    /// # Panics
    ///
    /// Panics if `one_based` is zero.
    pub fn from_one_based(one_based: usize) -> BusId {
        assert!(one_based >= 1, "bus numbering is 1-based");
        BusId(one_based - 1)
    }

    /// The dense 0-based index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for BusId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bus{}", self.0 + 1)
    }
}

/// A branch (transmission line) identifier: index into
/// [`PowerSystem::branches`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BranchId(pub usize);

impl BranchId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line{}", self.0 + 1)
    }
}

/// A transmission line between two buses with a DC-model susceptance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Branch {
    /// One endpoint.
    pub from: BusId,
    /// The other endpoint.
    pub to: BusId,
    /// Line susceptance (1/reactance) used by the DC power-flow model.
    pub susceptance: f64,
}

impl Branch {
    /// Creates a branch; endpoints must differ.
    ///
    /// # Panics
    ///
    /// Panics on a self-loop or non-positive susceptance.
    pub fn new(from: BusId, to: BusId, susceptance: f64) -> Branch {
        assert_ne!(from, to, "self-loop branch at {from}");
        assert!(
            susceptance > 0.0,
            "susceptance must be positive, got {susceptance}"
        );
        Branch {
            from,
            to,
            susceptance,
        }
    }

    /// Whether the branch touches the bus.
    pub fn touches(&self, bus: BusId) -> bool {
        self.from == bus || self.to == bus
    }

    /// The endpoint that is not `bus`.
    ///
    /// # Panics
    ///
    /// Panics if the branch does not touch `bus`.
    pub fn other_end(&self, bus: BusId) -> BusId {
        if self.from == bus {
            self.to
        } else if self.to == bus {
            self.from
        } else {
            panic!("{bus} is not an endpoint of this branch")
        }
    }
}

/// An immutable power network: a set of buses and the branches between
/// them.
///
/// # Examples
///
/// ```
/// use powergrid::ieee::ieee14;
/// let sys = ieee14();
/// assert_eq!(sys.num_buses(), 14);
/// assert_eq!(sys.num_branches(), 20);
/// assert!(sys.is_connected());
/// // Power grids have low average degree (~3) regardless of size.
/// assert!(sys.average_degree() < 3.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSystem {
    name: String,
    n_buses: usize,
    branches: Vec<Branch>,
    /// `adjacency[bus]` = branch ids incident to the bus.
    adjacency: Vec<Vec<BranchId>>,
}

impl PowerSystem {
    /// Builds a system from a branch list.
    ///
    /// # Panics
    ///
    /// Panics if a branch references a bus index `>= n_buses` or if two
    /// parallel branches join the same bus pair.
    pub fn new(name: impl Into<String>, n_buses: usize, branches: Vec<Branch>) -> PowerSystem {
        let mut adjacency = vec![Vec::new(); n_buses];
        let mut seen_pairs = std::collections::HashSet::new();
        for (i, b) in branches.iter().enumerate() {
            assert!(
                b.from.index() < n_buses && b.to.index() < n_buses,
                "branch {i} references bus outside 0..{n_buses}"
            );
            let key = (b.from.min(b.to), b.from.max(b.to));
            assert!(
                seen_pairs.insert(key),
                "parallel branch between {} and {}",
                b.from,
                b.to
            );
            adjacency[b.from.index()].push(BranchId(i));
            adjacency[b.to.index()].push(BranchId(i));
        }
        PowerSystem {
            name: name.into(),
            n_buses,
            branches,
            adjacency,
        }
    }

    /// The system's name (e.g. `"ieee14"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of buses.
    pub fn num_buses(&self) -> usize {
        self.n_buses
    }

    /// Number of branches.
    pub fn num_branches(&self) -> usize {
        self.branches.len()
    }

    /// All branches, indexed by [`BranchId`].
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// The branch with the given id.
    pub fn branch(&self, id: BranchId) -> &Branch {
        &self.branches[id.index()]
    }

    /// Iterator over all bus ids.
    pub fn buses(&self) -> impl Iterator<Item = BusId> {
        (0..self.n_buses).map(BusId)
    }

    /// Branch ids incident to a bus.
    pub fn branches_at(&self, bus: BusId) -> &[BranchId] {
        &self.adjacency[bus.index()]
    }

    /// Buses adjacent to `bus`.
    pub fn neighbors(&self, bus: BusId) -> Vec<BusId> {
        self.adjacency[bus.index()]
            .iter()
            .map(|&bid| self.branches[bid.index()].other_end(bus))
            .collect()
    }

    /// Degree of a bus.
    pub fn degree(&self, bus: BusId) -> usize {
        self.adjacency[bus.index()].len()
    }

    /// Average nodal degree (`2·branches / buses`).
    pub fn average_degree(&self) -> f64 {
        2.0 * self.branches.len() as f64 / self.n_buses as f64
    }

    /// Whether every bus is reachable from bus 0.
    pub fn is_connected(&self) -> bool {
        if self.n_buses == 0 {
            return true;
        }
        let mut visited = vec![false; self.n_buses];
        let mut stack = vec![BusId(0)];
        visited[0] = true;
        let mut count = 1;
        while let Some(b) = stack.pop() {
            for n in self.neighbors(b) {
                if !visited[n.index()] {
                    visited[n.index()] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == self.n_buses
    }

    /// Finds the branch joining two buses, if any.
    pub fn branch_between(&self, a: BusId, b: BusId) -> Option<BranchId> {
        self.adjacency[a.index()]
            .iter()
            .copied()
            .find(|&bid| self.branches[bid.index()].touches(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PowerSystem {
        // triangle 1-2-3 plus pendant 4 on 3
        PowerSystem::new(
            "tiny",
            4,
            vec![
                Branch::new(BusId(0), BusId(1), 1.0),
                Branch::new(BusId(1), BusId(2), 2.0),
                Branch::new(BusId(0), BusId(2), 3.0),
                Branch::new(BusId(2), BusId(3), 4.0),
            ],
        )
    }

    #[test]
    fn adjacency_and_degrees() {
        let s = tiny();
        assert_eq!(s.degree(BusId(0)), 2);
        assert_eq!(s.degree(BusId(2)), 3);
        assert_eq!(s.degree(BusId(3)), 1);
        let mut n = s.neighbors(BusId(2));
        n.sort();
        assert_eq!(n, vec![BusId(0), BusId(1), BusId(3)]);
    }

    #[test]
    fn connectivity() {
        let s = tiny();
        assert!(s.is_connected());
        let disconnected = PowerSystem::new("disc", 4, vec![Branch::new(BusId(0), BusId(1), 1.0)]);
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn branch_between_finds_lines() {
        let s = tiny();
        assert_eq!(s.branch_between(BusId(0), BusId(1)), Some(BranchId(0)));
        assert_eq!(s.branch_between(BusId(1), BusId(0)), Some(BranchId(0)));
        assert_eq!(s.branch_between(BusId(0), BusId(3)), None);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        Branch::new(BusId(1), BusId(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "parallel branch")]
    fn rejects_parallel_branches() {
        PowerSystem::new(
            "bad",
            2,
            vec![
                Branch::new(BusId(0), BusId(1), 1.0),
                Branch::new(BusId(1), BusId(0), 2.0),
            ],
        );
    }

    #[test]
    fn one_based_conversion() {
        assert_eq!(BusId::from_one_based(1), BusId(0));
        assert_eq!(BusId::from_one_based(14).index(), 13);
        assert_eq!(BusId(4).to_string(), "bus5");
    }

    #[test]
    fn other_end() {
        let b = Branch::new(BusId(2), BusId(5), 1.0);
        assert_eq!(b.other_end(BusId(2)), BusId(5));
        assert_eq!(b.other_end(BusId(5)), BusId(2));
        assert!(b.touches(BusId(2)));
        assert!(!b.touches(BusId(3)));
    }
}
