//! Bad-data detection.
//!
//! The classical residual-based detector behind the paper's
//! `(k, r)`-resilient bad-data detectability property: after WLS
//! estimation, the weighted sum of squared residuals `J(θ̂)` follows a
//! chi-square distribution with `m − (n−1)` degrees of freedom; an
//! outlier measurement inflates it. If a measurement is *critical* (no
//! redundant measurement observes the same state), its residual is
//! structurally zero and bad data on it cannot be detected — hence the
//! paper's requirement of `r + 1` secured measurements per state.

use crate::estimation::{DcEstimator, Estimate, EstimateError};
use crate::measurement::MeasurementSet;

/// Outcome of a bad-data test.
#[derive(Debug, Clone, PartialEq)]
pub enum BadDataVerdict {
    /// `J(θ̂)` is below the chi-square threshold: data accepted.
    Clean,
    /// Bad data suspected; the index (into the delivered-row list) and
    /// measurement-set index of the largest normalized residual.
    Suspect {
        /// Position within the delivered rows.
        position: usize,
        /// Measurement index in the measurement set.
        measurement: usize,
        /// The value of the largest normalized residual.
        normalized_residual: f64,
    },
}

/// The standard normal quantile (Acklam's rational approximation;
/// absolute error below 1.2e-9 over (0, 1)).
#[allow(clippy::excessive_precision)] // Acklam's coefficients, verbatim
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// The chi-square quantile via the Wilson–Hilferty approximation.
pub fn chi_square_quantile(p: f64, dof: usize) -> f64 {
    assert!(dof >= 1, "degrees of freedom must be positive");
    let k = dof as f64;
    let z = normal_quantile(p);
    let t = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * t * t * t
}

/// A chi-square + largest-normalized-residual bad-data detector.
#[derive(Debug, Clone)]
pub struct BadDataDetector {
    estimator: DcEstimator,
    confidence: f64,
    n_states: usize,
}

impl BadDataDetector {
    /// Creates a detector at the given confidence level (e.g. `0.95`).
    pub fn new(ms: &MeasurementSet, confidence: f64) -> BadDataDetector {
        BadDataDetector {
            estimator: DcEstimator::new(ms),
            confidence,
            n_states: ms.num_states(),
        }
    }

    /// Estimates the state and applies the chi-square test.
    ///
    /// # Errors
    ///
    /// Propagates estimation failures (unobservable selection, dimension
    /// mismatch).
    pub fn test(
        &self,
        z: &[f64],
        delivered: &[bool],
        sigma: f64,
    ) -> Result<(Estimate, BadDataVerdict), EstimateError> {
        let est = self.estimator.estimate(z, delivered, sigma)?;
        let m = est.delivered_rows.len();
        let dof = m.saturating_sub(self.n_states - 1);
        if dof == 0 {
            // No redundancy: residuals are structurally zero and bad data
            // is undetectable — report clean, which is exactly the danger
            // the resiliency property guards against.
            return Ok((est, BadDataVerdict::Clean));
        }
        let threshold = chi_square_quantile(self.confidence, dof);
        if est.objective <= threshold {
            return Ok((est, BadDataVerdict::Clean));
        }
        let (position, nr) = est
            .residuals
            .iter()
            .map(|r| (r / sigma).abs())
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("dof > 0 implies residuals");
        let verdict = BadDataVerdict::Suspect {
            position,
            measurement: est.delivered_rows[position],
            normalized_residual: nr,
        };
        Ok((est, verdict))
    }

    /// Iteratively removes suspect measurements until the test passes or
    /// the selection becomes unobservable. Returns the indices removed.
    ///
    /// # Errors
    ///
    /// Returns the estimation error if elimination makes the system
    /// unobservable before the data is clean.
    pub fn eliminate(
        &self,
        z: &[f64],
        delivered: &[bool],
        sigma: f64,
    ) -> Result<(Estimate, Vec<usize>), EstimateError> {
        let mut current = delivered.to_vec();
        let mut removed = Vec::new();
        loop {
            let (est, verdict) = self.test(z, &current, sigma)?;
            match verdict {
                BadDataVerdict::Clean => return Ok((est, removed)),
                BadDataVerdict::Suspect { measurement, .. } => {
                    current[measurement] = false;
                    removed.push(measurement);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimation::synthesize_measurements;
    use crate::ieee::case5;
    use crate::measurement::MeasurementKind;
    use crate::system::BusId;

    #[test]
    fn quantiles_match_tables() {
        // Known values: z(0.95) ≈ 1.6449, z(0.975) ≈ 1.9600.
        assert!((normal_quantile(0.95) - 1.6449).abs() < 1e-3);
        assert!((normal_quantile(0.975) - 1.9600).abs() < 1e-3);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        // chi2(0.95, 10) ≈ 18.307; chi2(0.95, 1) ≈ 3.841.
        assert!((chi_square_quantile(0.95, 10) - 18.307).abs() < 0.1);
        assert!((chi_square_quantile(0.95, 1) - 3.841).abs() < 0.15);
    }

    #[test]
    fn clean_data_passes() {
        let ms = MeasurementSet::full(case5());
        let sigma = 0.01;
        let (z, _) = synthesize_measurements(&ms, sigma, 21);
        let det = BadDataDetector::new(&ms, 0.99);
        let all = vec![true; ms.len()];
        let (_, verdict) = det.test(&z, &all, sigma).unwrap();
        assert_eq!(verdict, BadDataVerdict::Clean);
    }

    #[test]
    fn injected_bad_data_is_flagged_and_located() {
        let ms = MeasurementSet::full(case5());
        let sigma = 0.01;
        let (mut z, _) = synthesize_measurements(&ms, sigma, 22);
        let bad_index = 3;
        z[bad_index] += 1.0; // gross error, 100 sigma
        let det = BadDataDetector::new(&ms, 0.95);
        let all = vec![true; ms.len()];
        let (_, verdict) = det.test(&z, &all, sigma).unwrap();
        match verdict {
            BadDataVerdict::Suspect { measurement, .. } => {
                assert_eq!(measurement, bad_index, "LNR should point at the bad row");
            }
            BadDataVerdict::Clean => panic!("gross error went undetected"),
        }
    }

    #[test]
    fn elimination_recovers_truth() {
        let ms = MeasurementSet::full(case5());
        let sigma = 0.01;
        let (mut z, truth) = synthesize_measurements(&ms, sigma, 23);
        z[5] -= 2.0;
        let det = BadDataDetector::new(&ms, 0.95);
        let all = vec![true; ms.len()];
        let (est, removed) = det.eliminate(&z, &all, sigma).unwrap();
        assert!(removed.contains(&5));
        for (got, want) in est.angles.iter().zip(truth.iter()) {
            assert!((got - want).abs() < 0.05);
        }
    }

    #[test]
    fn bad_data_on_critical_measurement_is_undetectable() {
        // Exactly n-1 = 4 measurements observing case5: zero redundancy.
        let sys = case5();
        let pairs = [(1, 2), (2, 3), (3, 4), (4, 5)];
        let kinds: Vec<MeasurementKind> = pairs
            .iter()
            .map(|&(a, b)| {
                MeasurementKind::FlowForward(
                    sys.branch_between(BusId::from_one_based(a), BusId::from_one_based(b))
                        .unwrap(),
                )
            })
            .collect();
        let ms = MeasurementSet::new(sys, kinds);
        let sigma = 0.01;
        let (mut z, _) = synthesize_measurements(&ms, sigma, 24);
        z[2] += 5.0; // massive corruption
        let det = BadDataDetector::new(&ms, 0.95);
        let (_, verdict) = det.test(&z, &[true; 4], sigma).unwrap();
        // The residual space is empty: the corruption is invisible. This
        // is precisely the failure mode (k, r)-detectability prevents.
        assert_eq!(verdict, BadDataVerdict::Clean);
    }
}
