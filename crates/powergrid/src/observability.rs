//! Observability analysis.
//!
//! Two semantics are provided:
//!
//! * [`boolean_observability`] — the paper's Boolean abstraction: the
//!   delivered measurements must (i) cover every state variable and
//!   (ii) number at least `n` *distinct electrical components*
//!   (`Σ DelUMsr_E ≥ n`). This is what the formal model encodes.
//! * [`numeric_observable`] — the textbook numeric criterion: the
//!   delivered rows of the Jacobian have rank `n − 1` (angles are
//!   relative, so one reference bus is fixed). This is strictly stronger
//!   and is used in tests to sanity-check the abstraction.

use crate::jacobian::jacobian;
use crate::measurement::{MeasurementId, MeasurementSet};

/// Result of the paper's Boolean observability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BooleanObservability {
    /// Whether both conditions hold.
    pub observable: bool,
    /// Per-state coverage: `covered[x]` iff some delivered measurement
    /// has state `x` in its `StateSet`.
    pub covered: Vec<bool>,
    /// Number of distinct electrical components among delivered
    /// measurements (`Σ DelUMsr_E`).
    pub unique_delivered: usize,
}

impl BooleanObservability {
    /// States not covered by any delivered measurement.
    pub fn uncovered_states(&self) -> Vec<usize> {
        self.covered
            .iter()
            .enumerate()
            .filter(|&(_, &c)| !c)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Evaluates the paper's observability abstraction for a delivery vector
/// (`delivered[z]` = measurement `z` reached the MTU).
///
/// # Panics
///
/// Panics if `delivered` is not exactly one flag per measurement.
pub fn boolean_observability(ms: &MeasurementSet, delivered: &[bool]) -> BooleanObservability {
    assert_eq!(delivered.len(), ms.len(), "one flag per measurement");
    let n = ms.num_states();
    let mut covered = vec![false; n];
    for id in ms.ids() {
        if delivered[id.index()] {
            for x in ms.state_set(id) {
                covered[x] = true;
            }
        }
    }
    let unique_delivered = ms
        .unique_components()
        .iter()
        .filter(|group| group.iter().any(|m| delivered[m.index()]))
        .count();
    let observable = covered.iter().all(|&c| c) && unique_delivered >= n;
    BooleanObservability {
        observable,
        covered,
        unique_delivered,
    }
}

/// Numeric observability: delivered Jacobian rows span the angle space
/// relative to a reference bus (rank `n − 1` after dropping column 0).
pub fn numeric_observable(ms: &MeasurementSet, delivered: &[bool]) -> bool {
    assert_eq!(delivered.len(), ms.len());
    let n = ms.num_states();
    if n <= 1 {
        return true;
    }
    let keep: Vec<usize> = (0..ms.len()).filter(|&i| delivered[i]).collect();
    if keep.len() < n - 1 {
        return false;
    }
    let h = jacobian(ms).select_rows(&keep).drop_col(0);
    h.rank(1e-9) == n - 1
}

/// Partitions the state variables into *observable islands*: groups of
/// buses whose relative angles are determined by the delivered
/// measurements. Two states belong to the same island iff every
/// null-space direction of the delivered Jacobian moves them together
/// (so their difference is fixed). A fully observable system is one
/// island; a blind system is one island per bus.
pub fn observable_islands(ms: &MeasurementSet, delivered: &[bool]) -> Vec<Vec<usize>> {
    assert_eq!(delivered.len(), ms.len());
    let n = ms.num_states();
    let keep: Vec<usize> = (0..ms.len()).filter(|&i| delivered[i]).collect();
    let h = jacobian(ms).select_rows(&keep);
    let basis = h.null_space_basis(1e-9);
    // Group states by their signature across basis vectors.
    let mut islands: Vec<Vec<usize>> = Vec::new();
    let mut assigned = vec![false; n];
    for i in 0..n {
        if assigned[i] {
            continue;
        }
        let mut island = vec![i];
        assigned[i] = true;
        for j in (i + 1)..n {
            if assigned[j] {
                continue;
            }
            let together = basis.iter().all(|v| (v[i] - v[j]).abs() < 1e-6);
            if together {
                island.push(j);
                assigned[j] = true;
            }
        }
        islands.push(island);
    }
    islands
}

/// Measurements that are *critical* under the numeric criterion: removing
/// any one of them makes the (otherwise fully delivered) system
/// unobservable. Bad data on a critical measurement is undetectable,
/// which is why the paper's `r`-detectability requires redundancy.
pub fn critical_measurements(ms: &MeasurementSet) -> Vec<MeasurementId> {
    let all = vec![true; ms.len()];
    if !numeric_observable(ms, &all) {
        return Vec::new();
    }
    ms.ids()
        .filter(|&id| {
            let mut delivered = all.clone();
            delivered[id.index()] = false;
            !numeric_observable(ms, &delivered)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ieee::case5;
    use crate::measurement::MeasurementKind;
    use crate::system::{BranchId, BusId};

    #[test]
    fn full_set_is_observable_both_ways() {
        let ms = MeasurementSet::full(case5());
        let all = vec![true; ms.len()];
        let b = boolean_observability(&ms, &all);
        assert!(b.observable);
        assert_eq!(b.unique_delivered, 12);
        assert!(b.uncovered_states().is_empty());
        assert!(numeric_observable(&ms, &all));
    }

    #[test]
    fn nothing_delivered_is_unobservable() {
        let ms = MeasurementSet::full(case5());
        let none = vec![false; ms.len()];
        let b = boolean_observability(&ms, &none);
        assert!(!b.observable);
        assert_eq!(b.unique_delivered, 0);
        assert_eq!(b.uncovered_states().len(), 5);
        assert!(!numeric_observable(&ms, &none));
    }

    #[test]
    fn coverage_failure_detected() {
        // Only flows on line 1-2: states 3,4,5 uncovered.
        let sys = case5();
        let b12 = sys
            .branch_between(BusId::from_one_based(1), BusId::from_one_based(2))
            .unwrap();
        let ms = MeasurementSet::new(
            sys,
            vec![
                MeasurementKind::FlowForward(b12),
                MeasurementKind::FlowBackward(b12),
            ],
        );
        let b = boolean_observability(&ms, &[true, true]);
        assert!(!b.observable);
        assert_eq!(b.uncovered_states(), vec![2, 3, 4]);
        // The two flows are one component.
        assert_eq!(b.unique_delivered, 1);
    }

    #[test]
    fn count_failure_detected() {
        // Injections at buses 2 and 4 cover all five states of case5 but
        // are only two unique components (< 5): Boolean-unobservable.
        let ms = MeasurementSet::new(
            case5(),
            vec![
                MeasurementKind::Injection(BusId::from_one_based(2)),
                MeasurementKind::Injection(BusId::from_one_based(4)),
            ],
        );
        let b = boolean_observability(&ms, &[true, true]);
        assert!(b.uncovered_states().is_empty(), "coverage holds");
        assert_eq!(b.unique_delivered, 2);
        assert!(!b.observable, "count condition fails");
    }

    #[test]
    fn numeric_observability_with_spanning_flows() {
        // Flows on a spanning tree of case5 observe the system.
        let sys = case5();
        let tree_pairs = [(1, 2), (2, 3), (2, 4), (4, 5)];
        let kinds: Vec<MeasurementKind> = tree_pairs
            .iter()
            .map(|&(a, b)| {
                MeasurementKind::FlowForward(
                    sys.branch_between(BusId::from_one_based(a), BusId::from_one_based(b))
                        .unwrap(),
                )
            })
            .collect();
        let ms = MeasurementSet::new(sys, kinds);
        assert!(numeric_observable(&ms, &[true; 4]));
        // Dropping any tree edge loses observability.
        for i in 0..4 {
            let mut d = vec![true; 4];
            d[i] = false;
            assert!(!numeric_observable(&ms, &d), "tree edge {i} is critical");
        }
    }

    #[test]
    fn boolean_is_weaker_than_numeric_on_flows() {
        // A flow-only set that is Boolean-observable must also satisfy
        // coverage, but the count condition with n=5 needs 5 line
        // components: flows on 5 of the 7 lines.
        let sys = case5();
        let kinds: Vec<MeasurementKind> = (0..5)
            .map(|i| MeasurementKind::FlowForward(BranchId(i)))
            .collect();
        let ms = MeasurementSet::new(sys, kinds);
        let d = vec![true; ms.len()];
        let b = boolean_observability(&ms, &d);
        // Whatever the verdicts, Boolean-observable must imply numeric
        // needs at least rank 4 of these rows — check consistency.
        if b.observable {
            assert!(numeric_observable(&ms, &d) || b.unique_delivered >= 5);
        }
    }

    #[test]
    fn critical_measurements_on_tree() {
        let sys = case5();
        let tree_pairs = [(1, 2), (2, 3), (2, 4), (4, 5)];
        let kinds: Vec<MeasurementKind> = tree_pairs
            .iter()
            .map(|&(a, b)| {
                MeasurementKind::FlowForward(
                    sys.branch_between(BusId::from_one_based(a), BusId::from_one_based(b))
                        .unwrap(),
                )
            })
            .collect();
        let ms = MeasurementSet::new(sys, kinds);
        // Every measurement of a spanning tree is critical.
        assert_eq!(critical_measurements(&ms).len(), 4);
        // The full set has no critical measurements.
        let full = MeasurementSet::full(case5());
        assert!(critical_measurements(&full).is_empty());
    }
}

#[cfg(test)]
mod island_tests {
    use super::*;
    use crate::ieee::case5;
    use crate::measurement::MeasurementKind;
    use crate::system::BusId;

    fn flows(pairs: &[(usize, usize)]) -> MeasurementSet {
        let sys = case5();
        let kinds: Vec<MeasurementKind> = pairs
            .iter()
            .map(|&(a, b)| {
                MeasurementKind::FlowForward(
                    sys.branch_between(BusId::from_one_based(a), BusId::from_one_based(b))
                        .unwrap(),
                )
            })
            .collect();
        MeasurementSet::new(sys, kinds)
    }

    #[test]
    fn full_delivery_is_one_island() {
        let ms = MeasurementSet::full(case5());
        let islands = observable_islands(&ms, &vec![true; ms.len()]);
        assert_eq!(islands.len(), 1);
        assert_eq!(islands[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn no_delivery_is_all_singletons() {
        let ms = MeasurementSet::full(case5());
        let islands = observable_islands(&ms, &vec![false; ms.len()]);
        assert_eq!(islands.len(), 5);
        assert!(islands.iter().all(|i| i.len() == 1));
    }

    #[test]
    fn flow_components_form_islands() {
        // Flows on 1-2 and 4-5 only: islands {1,2}, {3}, {4,5}.
        let ms = flows(&[(1, 2), (4, 5)]);
        let mut islands = observable_islands(&ms, &[true, true]);
        islands.sort();
        assert_eq!(islands, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn spanning_tree_yields_single_island() {
        let ms = flows(&[(1, 2), (2, 3), (2, 4), (4, 5)]);
        let islands = observable_islands(&ms, &[true; 4]);
        assert_eq!(islands.len(), 1);
    }

    #[test]
    fn injection_glues_neighborhood() {
        // A single injection at bus 2 ties bus 2 to all its neighbors …
        // but one equation over five unknowns cannot fix four angle
        // differences: islands remain fine-grained, yet fewer than with
        // nothing delivered is not guaranteed. What must hold: island
        // structure is consistent with numeric observability.
        let sys = case5();
        let ms = MeasurementSet::new(
            sys,
            vec![MeasurementKind::Injection(BusId::from_one_based(2))],
        );
        let islands = observable_islands(&ms, &[true]);
        // One equation removes exactly one degree of freedom: n-1 = 4
        // independent differences remain undetermined, so we still see
        // more than one island.
        assert!(islands.len() > 1);
    }

    #[test]
    fn islands_refine_unobservability() {
        // If the system is numerically observable, there is one island.
        let ms = MeasurementSet::full(case5());
        let mut delivered = vec![true; ms.len()];
        assert!(numeric_observable(&ms, &delivered));
        assert_eq!(observable_islands(&ms, &delivered).len(), 1);
        // Drop everything touching bus 5 except one line: island split.
        for id in ms.ids() {
            if ms.state_set(id).contains(&4) {
                delivered[id.index()] = false;
            }
        }
        if !numeric_observable(&ms, &delivered) {
            assert!(observable_islands(&ms, &delivered).len() > 1);
        }
    }
}
