//! The measurement model.
//!
//! A measurement is a line power flow (in either direction) or a bus
//! power injection. Two notions from the paper live here:
//!
//! * **StateSet(Z)** — the state variables with non-zero Jacobian entries
//!   in measurement Z's row: the line endpoints for a flow, the bus plus
//!   its neighbors for an injection ([`MeasurementSet::state_set`]);
//! * **UMsrSet(E)** — the grouping of measurements by the *electrical
//!   component* they observe: forward and backward flow on the same line
//!   are one component ([`MeasurementSet::unique_components`]).

use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::system::{BranchId, BusId, PowerSystem};

/// Index of a measurement within a [`MeasurementSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MeasurementId(pub usize);

impl MeasurementId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MeasurementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z{}", self.0 + 1)
    }
}

/// What a measurement observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasurementKind {
    /// Power flow on a line, measured at the `from` end (`P_ij`).
    FlowForward(BranchId),
    /// Power flow on a line, measured at the `to` end (`P_ji`).
    FlowBackward(BranchId),
    /// Net power injection (consumption) at a bus.
    Injection(BusId),
}

/// The electrical component a measurement observes; measurements sharing
/// a component are redundant with one another (the paper's `UMsrSet_E`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ElectricalComponent {
    /// A transmission line (observed by its forward/backward flows).
    Line(BranchId),
    /// A bus (observed by its injection).
    Bus(BusId),
}

impl MeasurementKind {
    /// The electrical component this measurement observes.
    pub fn component(self) -> ElectricalComponent {
        match self {
            MeasurementKind::FlowForward(b) | MeasurementKind::FlowBackward(b) => {
                ElectricalComponent::Line(b)
            }
            MeasurementKind::Injection(b) => ElectricalComponent::Bus(b),
        }
    }
}

impl fmt::Display for MeasurementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasurementKind::FlowForward(b) => write!(f, "P({b})"),
            MeasurementKind::FlowBackward(b) => write!(f, "P'({b})"),
            MeasurementKind::Injection(b) => write!(f, "inj({b})"),
        }
    }
}

/// A power system together with an ordered list of measurements taken on
/// it.
///
/// # Examples
///
/// ```
/// use powergrid::ieee::case5;
/// use powergrid::measurement::MeasurementSet;
///
/// let ms = MeasurementSet::full(case5());
/// // 7 lines × 2 directions + 5 injections.
/// assert_eq!(ms.len(), 19);
/// assert_eq!(ms.num_states(), 5);
/// // Forward and backward flows pair up into line components.
/// assert_eq!(ms.unique_components().len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementSet {
    system: PowerSystem,
    kinds: Vec<MeasurementKind>,
}

impl MeasurementSet {
    /// Creates a measurement set with an explicit list of kinds.
    ///
    /// # Panics
    ///
    /// Panics if a kind references a branch/bus outside the system or if
    /// the same kind appears twice.
    pub fn new(system: PowerSystem, kinds: Vec<MeasurementKind>) -> MeasurementSet {
        let mut seen = std::collections::HashSet::new();
        for k in &kinds {
            match *k {
                MeasurementKind::FlowForward(b) | MeasurementKind::FlowBackward(b) => {
                    assert!(b.index() < system.num_branches(), "unknown branch {b}");
                }
                MeasurementKind::Injection(b) => {
                    assert!(b.index() < system.num_buses(), "unknown bus {b}");
                }
            }
            assert!(seen.insert(*k), "duplicate measurement {k}");
        }
        MeasurementSet { system, kinds }
    }

    /// The maximal measurement set: both flow directions on every line
    /// plus every bus injection (`2·L + B` measurements, the "100%"
    /// density of the paper's Fig 7a).
    pub fn full(system: PowerSystem) -> MeasurementSet {
        let mut kinds = Vec::with_capacity(2 * system.num_branches() + system.num_buses());
        for i in 0..system.num_branches() {
            kinds.push(MeasurementKind::FlowForward(BranchId(i)));
        }
        for i in 0..system.num_branches() {
            kinds.push(MeasurementKind::FlowBackward(BranchId(i)));
        }
        for b in 0..system.num_buses() {
            kinds.push(MeasurementKind::Injection(BusId(b)));
        }
        MeasurementSet::new(system, kinds)
    }

    /// A random sample of the maximal set at the given density
    /// (fraction of `2·L + B`, clamped to `[0, 1]`), deterministic in
    /// `seed`. Forward flows are preferred first so low densities still
    /// resemble realistic meter placements.
    pub fn sampled(system: PowerSystem, density: f64, seed: u64) -> MeasurementSet {
        let density = density.clamp(0.0, 1.0);
        let max = 2 * system.num_branches() + system.num_buses();
        let target = ((max as f64) * density).round() as usize;
        let mut rng = StdRng::seed_from_u64(seed);

        let mut fwd: Vec<MeasurementKind> = (0..system.num_branches())
            .map(|i| MeasurementKind::FlowForward(BranchId(i)))
            .collect();
        let mut rest: Vec<MeasurementKind> = (0..system.num_buses())
            .map(|b| MeasurementKind::Injection(BusId(b)))
            .chain((0..system.num_branches()).map(|i| MeasurementKind::FlowBackward(BranchId(i))))
            .collect();
        fwd.shuffle(&mut rng);
        rest.shuffle(&mut rng);
        let kinds: Vec<MeasurementKind> = fwd.into_iter().chain(rest).take(target).collect();
        MeasurementSet::new(system, kinds)
    }

    /// The underlying power system.
    pub fn system(&self) -> &PowerSystem {
        &self.system
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether there are no measurements.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Number of state variables (bus angles; the Boolean abstraction
    /// keeps all buses as states, matching the paper's 5-state 5-bus
    /// example).
    pub fn num_states(&self) -> usize {
        self.system.num_buses()
    }

    /// Iterator over measurement ids.
    pub fn ids(&self) -> impl Iterator<Item = MeasurementId> {
        (0..self.kinds.len()).map(MeasurementId)
    }

    /// The kind of a measurement.
    pub fn kind(&self, id: MeasurementId) -> MeasurementKind {
        self.kinds[id.index()]
    }

    /// All kinds in order.
    pub fn kinds(&self) -> &[MeasurementKind] {
        &self.kinds
    }

    /// The paper's `StateSet_Z`: state variables (bus indices) with
    /// non-zero entries in this measurement's Jacobian row.
    pub fn state_set(&self, id: MeasurementId) -> Vec<usize> {
        match self.kinds[id.index()] {
            MeasurementKind::FlowForward(b) | MeasurementKind::FlowBackward(b) => {
                let br = self.system.branch(b);
                vec![br.from.index(), br.to.index()]
            }
            MeasurementKind::Injection(bus) => {
                let mut s: Vec<usize> = self
                    .system
                    .neighbors(bus)
                    .into_iter()
                    .map(|n| n.index())
                    .collect();
                s.push(bus.index());
                s.sort_unstable();
                s
            }
        }
    }

    /// The paper's `UMsrSet` grouping: measurements partitioned by the
    /// electrical component they observe, in first-appearance order.
    pub fn unique_components(&self) -> Vec<Vec<MeasurementId>> {
        let mut order: Vec<ElectricalComponent> = Vec::new();
        let mut groups: std::collections::HashMap<ElectricalComponent, Vec<MeasurementId>> =
            std::collections::HashMap::new();
        for id in self.ids() {
            let comp = self.kind(id).component();
            let entry = groups.entry(comp).or_default();
            if entry.is_empty() {
                order.push(comp);
            }
            entry.push(id);
        }
        order
            .into_iter()
            .map(|c| groups.remove(&c).unwrap())
            .collect()
    }

    /// Index of the component group of each measurement (parallel to the
    /// grouping returned by [`MeasurementSet::unique_components`]).
    pub fn component_of(&self) -> Vec<usize> {
        let groups = self.unique_components();
        let mut of = vec![usize::MAX; self.len()];
        for (gi, g) in groups.iter().enumerate() {
            for &m in g {
                of[m.index()] = gi;
            }
        }
        of
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ieee::case5;
    use crate::system::Branch;

    #[test]
    fn state_sets() {
        let sys = case5();
        // Find the branch 1-2 and the injection at bus 2.
        let b12 = sys
            .branch_between(BusId::from_one_based(1), BusId::from_one_based(2))
            .unwrap();
        let ms = MeasurementSet::new(
            sys,
            vec![
                MeasurementKind::FlowForward(b12),
                MeasurementKind::Injection(BusId::from_one_based(2)),
            ],
        );
        assert_eq!(ms.state_set(MeasurementId(0)), vec![0, 1]);
        // Bus 2 neighbors in case5: 1, 3, 4, 5 → states {0,1,2,3,4}.
        assert_eq!(ms.state_set(MeasurementId(1)), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unique_components_pair_flows() {
        let ms = MeasurementSet::full(case5());
        let groups = ms.unique_components();
        assert_eq!(groups.len(), 12); // 7 lines + 5 buses
        let line_groups = groups.iter().filter(|g| g.len() == 2).count();
        assert_eq!(line_groups, 7);
        let comp = ms.component_of();
        assert!(comp.iter().all(|&c| c < groups.len()));
    }

    #[test]
    fn sampled_density() {
        let full = MeasurementSet::full(case5());
        let half = MeasurementSet::sampled(case5(), 0.5, 42);
        assert_eq!(half.len(), (full.len() as f64 * 0.5).round() as usize);
        let all = MeasurementSet::sampled(case5(), 1.0, 42);
        assert_eq!(all.len(), full.len());
        // Deterministic in the seed.
        let again = MeasurementSet::sampled(case5(), 0.5, 42);
        assert_eq!(half, again);
        let other = MeasurementSet::sampled(case5(), 0.5, 43);
        assert_ne!(half, other);
    }

    #[test]
    #[should_panic(expected = "duplicate measurement")]
    fn rejects_duplicates() {
        let sys = case5();
        MeasurementSet::new(
            sys,
            vec![
                MeasurementKind::Injection(BusId(0)),
                MeasurementKind::Injection(BusId(0)),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "unknown bus")]
    fn rejects_out_of_range() {
        MeasurementSet::new(case5(), vec![MeasurementKind::Injection(BusId(99))]);
    }

    #[test]
    fn display_forms() {
        let sys = PowerSystem::new("two", 2, vec![Branch::new(BusId(0), BusId(1), 1.0)]);
        let ms = MeasurementSet::full(sys);
        let rendered: Vec<String> = ms.kinds().iter().map(|k| k.to_string()).collect();
        assert_eq!(
            rendered,
            vec!["P(line1)", "P'(line1)", "inj(bus1)", "inj(bus2)"]
        );
    }
}
