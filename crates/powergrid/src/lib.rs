//! # powergrid — power network and measurement substrate
//!
//! The electrical side of the SCADA resiliency analyzer (DSN'16
//! reproduction): network topologies, the DC measurement model with its
//! Jacobian structure, observability analysis in both the paper's Boolean
//! abstraction and the numeric rank sense, weighted-least-squares state
//! estimation, and residual-based bad-data detection.
//!
//! The paper's formal model consumes three things from this crate:
//!
//! * `StateSet_Z` — which states each measurement constrains
//!   ([`measurement::MeasurementSet::state_set`]),
//! * `UMsrSet_E` — which measurements observe the same electrical
//!   component ([`measurement::MeasurementSet::unique_components`]),
//! * the observability predicate
//!   ([`observability::boolean_observability`]).
//!
//! The estimator and detector exist so examples can demonstrate the
//! *consequences* of losing observability or redundancy, which is what
//! the resiliency properties are for.
//!
//! # Examples
//!
//! ```
//! use powergrid::ieee::ieee14;
//! use powergrid::measurement::MeasurementSet;
//! use powergrid::observability::{boolean_observability, numeric_observable};
//!
//! let ms = MeasurementSet::full(ieee14());
//! let all = vec![true; ms.len()];
//! assert!(boolean_observability(&ms, &all).observable);
//! assert!(numeric_observable(&ms, &all));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baddata;
pub mod estimation;
pub mod ieee;
pub mod jacobian;
pub mod linalg;
pub mod measurement;
pub mod observability;
pub mod securityindex;
pub mod synthetic;
mod system;

pub use measurement::{ElectricalComponent, MeasurementId, MeasurementKind, MeasurementSet};
pub use system::{Branch, BranchId, BusId, PowerSystem};
