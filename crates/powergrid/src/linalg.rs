//! Minimal dense linear algebra: just enough for Jacobian rank tests and
//! DC weighted-least-squares state estimation.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged row {i}");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A new matrix keeping only the given rows, in order.
    pub fn select_rows(&self, keep: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(keep.len(), self.cols);
        for (i, &r) in keep.iter().enumerate() {
            for j in 0..self.cols {
                m[(i, j)] = self[(r, j)];
            }
        }
        m
    }

    /// A new matrix dropping one column.
    pub fn drop_col(&self, col: usize) -> Matrix {
        assert!(col < self.cols);
        let mut m = Matrix::zeros(self.rows, self.cols - 1);
        for i in 0..self.rows {
            let mut jj = 0;
            for j in 0..self.cols {
                if j != col {
                    m[(i, jj)] = self[(i, j)];
                    jj += 1;
                }
            }
        }
        m
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// Numerical rank via Gaussian elimination with partial pivoting.
    pub fn rank(&self, tol: f64) -> usize {
        let mut a = self.clone();
        let mut rank = 0;
        let mut row = 0;
        for col in 0..a.cols {
            if row >= a.rows {
                break;
            }
            // Find pivot.
            let mut pivot = row;
            for r in (row + 1)..a.rows {
                if a[(r, col)].abs() > a[(pivot, col)].abs() {
                    pivot = r;
                }
            }
            if a[(pivot, col)].abs() <= tol {
                continue;
            }
            if pivot != row {
                for j in 0..a.cols {
                    let tmp = a[(row, j)];
                    a[(row, j)] = a[(pivot, j)];
                    a[(pivot, j)] = tmp;
                }
            }
            let p = a[(row, col)];
            for r in (row + 1)..a.rows {
                let factor = a[(r, col)] / p;
                if factor != 0.0 {
                    for j in col..a.cols {
                        a[(r, j)] -= factor * a[(row, j)];
                    }
                }
            }
            rank += 1;
            row += 1;
        }
        rank
    }

    /// Solves the square system `self · x = b` by Gaussian elimination
    /// with partial pivoting. Returns `None` if the matrix is singular
    /// (pivot below `tol`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b` has the wrong length.
    pub fn solve(&self, b: &[f64], tol: f64) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            let mut pivot = col;
            for r in (col + 1)..n {
                if a[(r, col)].abs() > a[(pivot, col)].abs() {
                    pivot = r;
                }
            }
            if a[(pivot, col)].abs() <= tol {
                return None;
            }
            if pivot != col {
                for j in 0..n {
                    let tmp = a[(col, j)];
                    a[(col, j)] = a[(pivot, j)];
                    a[(pivot, j)] = tmp;
                }
                x.swap(col, pivot);
            }
            let p = a[(col, col)];
            for r in (col + 1)..n {
                let factor = a[(r, col)] / p;
                if factor != 0.0 {
                    for j in col..n {
                        a[(r, j)] -= factor * a[(col, j)];
                    }
                    x[r] -= factor * x[col];
                }
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            x[col] /= a[(col, col)];
            for r in 0..col {
                x[r] -= a[(r, col)] * x[col];
            }
        }
        Some(x)
    }
}

impl Matrix {
    /// An orthogonal-free basis of the null space `{x : A·x = 0}`,
    /// one basis vector per returned row, computed via reduced row
    /// echelon form with partial pivoting.
    pub fn null_space_basis(&self, tol: f64) -> Vec<Vec<f64>> {
        let mut a = self.clone();
        let n = a.cols;
        // Forward elimination to row echelon form, tracking pivot cols.
        let mut pivot_cols: Vec<usize> = Vec::new();
        let mut row = 0;
        for col in 0..n {
            if row >= a.rows {
                break;
            }
            let mut pivot = row;
            for r in (row + 1)..a.rows {
                if a[(r, col)].abs() > a[(pivot, col)].abs() {
                    pivot = r;
                }
            }
            if a[(pivot, col)].abs() <= tol {
                continue;
            }
            if pivot != row {
                for j in 0..n {
                    let tmp = a[(row, j)];
                    a[(row, j)] = a[(pivot, j)];
                    a[(pivot, j)] = tmp;
                }
            }
            let p = a[(row, col)];
            for j in col..n {
                a[(row, j)] /= p;
            }
            for r in 0..a.rows {
                if r != row && a[(r, col)].abs() > 0.0 {
                    let factor = a[(r, col)];
                    for j in col..n {
                        a[(r, j)] -= factor * a[(row, j)];
                    }
                }
            }
            pivot_cols.push(col);
            row += 1;
        }
        // Free columns parameterize the null space.
        let is_pivot: Vec<bool> = {
            let mut v = vec![false; n];
            for &c in &pivot_cols {
                v[c] = true;
            }
            v
        };
        let mut basis = Vec::new();
        for free in 0..n {
            if is_pivot[free] {
                continue;
            }
            let mut x = vec![0.0; n];
            x[free] = 1.0;
            for (r, &pc) in pivot_cols.iter().enumerate() {
                x[pc] = -a[(r, free)];
            }
            basis.push(x);
        }
        basis
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_of_identity_and_singular() {
        let id = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(id.rank(1e-9), 2);
        let singular = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(singular.rank(1e-9), 1);
        let zero = Matrix::zeros(3, 3);
        assert_eq!(zero.rank(1e-9), 0);
    }

    #[test]
    fn rank_wide_and_tall() {
        let wide = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 1.0]]);
        assert_eq!(wide.rank(1e-9), 2);
        let tall = wide.transpose();
        assert_eq!(tall.rank(1e-9), 2);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x - y = 1  → x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let x = a.solve(&[5.0, 1.0], 1e-12).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0], 1e-12).is_none());
    }

    #[test]
    fn matmul_and_matvec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]));
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn select_and_drop() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(
            s,
            Matrix::from_rows(&[vec![7.0, 8.0, 9.0], vec![1.0, 2.0, 3.0]])
        );
        let d = a.drop_col(1);
        assert_eq!(
            d,
            Matrix::from_rows(&[vec![1.0, 3.0], vec![4.0, 6.0], vec![7.0, 9.0]])
        );
    }

    #[test]
    fn solve_random_round_trip() {
        // a · x = b with known x; recover x.
        let a = Matrix::from_rows(&[
            vec![3.0, 1.0, 0.5],
            vec![1.0, 4.0, 1.0],
            vec![0.5, 1.0, 5.0],
        ]);
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = a.solve(&b, 1e-12).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }
}
