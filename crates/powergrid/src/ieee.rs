//! IEEE test systems.
//!
//! [`ieee14`] is the real IEEE 14-bus network (20 branches, reactances
//! from the standard test-case data). [`case5`] is the 5-bus subsystem
//! (buses 1–5 of the 14-bus system) used by the paper's case study; its
//! seven line susceptances (16.90, 4.48, 5.05, 5.67, 5.75, 5.85, 23.75)
//! are exactly the values legible in the paper's Table II Jacobian.
//!
//! Larger sizes (30/57/118) are produced by
//! [`crate::synthetic::ieee_sized`], since the evaluation only exercises
//! topology shape and scale — see DESIGN.md for the substitution note.

use crate::system::{Branch, BusId, PowerSystem};

/// `(from, to, reactance)` rows of the IEEE 14-bus test case.
const IEEE14_BRANCHES: [(usize, usize, f64); 20] = [
    (1, 2, 0.05917),
    (1, 5, 0.22304),
    (2, 3, 0.19797),
    (2, 4, 0.17632),
    (2, 5, 0.17388),
    (3, 4, 0.17103),
    (4, 5, 0.04211),
    (4, 7, 0.20912),
    (4, 9, 0.55618),
    (5, 6, 0.25202),
    (6, 11, 0.19890),
    (6, 12, 0.25581),
    (6, 13, 0.13027),
    (7, 8, 0.17615),
    (7, 9, 0.11001),
    (9, 10, 0.08450),
    (9, 14, 0.27038),
    (10, 11, 0.19207),
    (12, 13, 0.19988),
    (13, 14, 0.34802),
];

/// The IEEE 14-bus test system.
pub fn ieee14() -> PowerSystem {
    let branches = IEEE14_BRANCHES
        .iter()
        .map(|&(f, t, x)| Branch::new(BusId::from_one_based(f), BusId::from_one_based(t), 1.0 / x))
        .collect();
    PowerSystem::new("ieee14", 14, branches)
}

/// The paper's 5-bus case-study system: buses 1–5 of the IEEE 14-bus
/// network with the seven lines among them.
pub fn case5() -> PowerSystem {
    let branches = IEEE14_BRANCHES
        .iter()
        .filter(|&&(f, t, _)| f <= 5 && t <= 5)
        .map(|&(f, t, x)| Branch::new(BusId::from_one_based(f), BusId::from_one_based(t), 1.0 / x))
        .collect();
    PowerSystem::new("case5", 5, branches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ieee14_shape() {
        let s = ieee14();
        assert_eq!(s.num_buses(), 14);
        assert_eq!(s.num_branches(), 20);
        assert!(s.is_connected());
        // Known degrees: bus 4 has 5 lines (2,3,5,7,9); bus 8 has 1 (7).
        assert_eq!(s.degree(BusId::from_one_based(4)), 5);
        assert_eq!(s.degree(BusId::from_one_based(8)), 1);
        assert!((s.average_degree() - 20.0 * 2.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn case5_shape_and_susceptances() {
        let s = case5();
        assert_eq!(s.num_buses(), 5);
        assert_eq!(s.num_branches(), 7);
        assert!(s.is_connected());
        // The paper's Table II susceptances, to two decimals.
        let mut sus: Vec<f64> = s.branches().iter().map(|b| b.susceptance).collect();
        sus.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected = [4.48, 5.05, 5.67, 5.75, 5.85, 16.90, 23.75];
        for (got, want) in sus.iter().zip(expected.iter()) {
            assert!(
                (got - want).abs() < 0.01,
                "susceptance {got} does not match Table II value {want}"
            );
        }
    }

    #[test]
    fn case5_is_subgraph_of_ieee14() {
        let small = case5();
        let big = ieee14();
        for b in small.branches() {
            assert!(big.branch_between(b.from, b.to).is_some());
        }
    }
}
