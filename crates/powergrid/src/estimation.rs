//! DC weighted-least-squares state estimation.
//!
//! State estimation is the SCADA control routine whose data needs the
//! paper's resiliency properties protect (§II-A): the MTU solves
//! `min Σ wᵢ(zᵢ − Hᵢθ)²` for the bus angles `θ`. This module implements
//! the estimator over the DC model so examples and tests can demonstrate
//! *why* observability and measurement redundancy matter, not just that
//! the Boolean abstraction says so.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::jacobian::jacobian;
use crate::linalg::Matrix;
use crate::measurement::MeasurementSet;

/// Errors from [`DcEstimator::estimate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// The gain matrix is singular: the delivered measurements do not
    /// observe the system.
    Unobservable,
    /// Input lengths disagree with the measurement set.
    DimensionMismatch,
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::Unobservable => {
                write!(f, "system is unobservable with the delivered measurements")
            }
            EstimateError::DimensionMismatch => write!(f, "input dimension mismatch"),
        }
    }
}

impl std::error::Error for EstimateError {}

/// The result of a weighted-least-squares estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Estimated bus angles; the reference bus (index 0) is fixed at 0.
    pub angles: Vec<f64>,
    /// Residuals `z − H·θ̂` for the delivered measurements, indexed like
    /// the `delivered` selection order.
    pub residuals: Vec<f64>,
    /// Indices (into the measurement set) of the delivered measurements,
    /// parallel to `residuals`.
    pub delivered_rows: Vec<usize>,
    /// The weighted sum of squared residuals `J(θ̂)`.
    pub objective: f64,
}

/// A DC WLS estimator over a measurement set.
#[derive(Debug, Clone)]
pub struct DcEstimator {
    h: Matrix,
    n_states: usize,
}

impl DcEstimator {
    /// Builds the estimator (computes the Jacobian once).
    pub fn new(ms: &MeasurementSet) -> DcEstimator {
        DcEstimator {
            h: jacobian(ms),
            n_states: ms.num_states(),
        }
    }

    /// Estimates the state from measurement values.
    ///
    /// `z` holds one value per measurement; `delivered` selects which
    /// measurements actually arrived; `sigma` is the per-measurement
    /// noise standard deviation (weights are `1/σ²`).
    ///
    /// # Errors
    ///
    /// [`EstimateError::Unobservable`] if the delivered rows do not
    /// observe the system; [`EstimateError::DimensionMismatch`] on
    /// length mismatches.
    pub fn estimate(
        &self,
        z: &[f64],
        delivered: &[bool],
        sigma: f64,
    ) -> Result<Estimate, EstimateError> {
        if z.len() != self.h.rows() || delivered.len() != self.h.rows() {
            return Err(EstimateError::DimensionMismatch);
        }
        let rows: Vec<usize> = (0..z.len()).filter(|&i| delivered[i]).collect();
        if rows.len() < self.n_states.saturating_sub(1) {
            return Err(EstimateError::Unobservable);
        }
        // Reduced H without the reference column.
        let hr = self.h.select_rows(&rows).drop_col(0);
        let w = 1.0 / (sigma * sigma);
        // Gain matrix G = HᵀWH; right-hand side HᵀWz.
        let ht = hr.transpose();
        let mut g = ht.matmul(&hr);
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                g[(i, j)] *= w;
            }
        }
        let zr: Vec<f64> = rows.iter().map(|&r| z[r] * w).collect();
        let rhs = ht.matvec(&zr);
        let theta_red = g.solve(&rhs, 1e-9).ok_or(EstimateError::Unobservable)?;
        let mut angles = Vec::with_capacity(self.n_states);
        angles.push(0.0);
        angles.extend_from_slice(&theta_red);
        // Residuals on delivered rows.
        let predicted = self.h.select_rows(&rows).matvec(&angles);
        let residuals: Vec<f64> = rows
            .iter()
            .zip(predicted.iter())
            .map(|(&r, &p)| z[r] - p)
            .collect();
        let objective: f64 = residuals.iter().map(|r| (r / sigma).powi(2)).sum();
        Ok(Estimate {
            angles,
            residuals,
            delivered_rows: rows,
            objective,
        })
    }
}

/// Generates synthetic measurement values from a ground-truth state.
///
/// Returns `(z, truth)` where `truth[0] = 0` (reference bus) and the
/// other angles are drawn uniformly from ±0.2 rad; `z = H·truth + e` with
/// Gaussian-ish noise of standard deviation `sigma` (sum of 12 uniforms).
pub fn synthesize_measurements(ms: &MeasurementSet, sigma: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = ms.num_states();
    let mut truth = vec![0.0; n];
    for t in truth.iter_mut().skip(1) {
        *t = rng.random_range(-0.2..0.2);
    }
    let h = jacobian(ms);
    let mut z = h.matvec(&truth);
    for v in &mut z {
        // Irwin–Hall(12) − 6 approximates a standard normal.
        let g: f64 = (0..12).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() - 6.0;
        *v += sigma * g;
    }
    (z, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ieee::case5;

    #[test]
    fn recovers_noiseless_state() {
        let ms = MeasurementSet::full(case5());
        let (z, truth) = synthesize_measurements(&ms, 0.0, 7);
        let est = DcEstimator::new(&ms);
        let all = vec![true; ms.len()];
        let e = est.estimate(&z, &all, 0.01).unwrap();
        for (got, want) in e.angles.iter().zip(truth.iter()) {
            assert!((got - want).abs() < 1e-9, "angle {got} vs {want}");
        }
        assert!(e.objective < 1e-12);
    }

    #[test]
    fn noisy_estimate_is_close() {
        let ms = MeasurementSet::full(case5());
        let sigma = 0.01;
        let (z, truth) = synthesize_measurements(&ms, sigma, 11);
        let est = DcEstimator::new(&ms);
        let all = vec![true; ms.len()];
        let e = est.estimate(&z, &all, sigma).unwrap();
        for (got, want) in e.angles.iter().zip(truth.iter()) {
            assert!((got - want).abs() < 0.05, "angle {got} vs {want}");
        }
    }

    #[test]
    fn unobservable_selection_errors() {
        let ms = MeasurementSet::full(case5());
        let (z, _) = synthesize_measurements(&ms, 0.0, 3);
        let est = DcEstimator::new(&ms);
        let mut none = vec![false; ms.len()];
        assert_eq!(
            est.estimate(&z, &none, 0.01),
            Err(EstimateError::Unobservable)
        );
        // A single flow cannot observe 5 buses.
        none[0] = true;
        assert_eq!(
            est.estimate(&z, &none, 0.01),
            Err(EstimateError::Unobservable)
        );
    }

    #[test]
    fn dimension_mismatch_detected() {
        let ms = MeasurementSet::full(case5());
        let est = DcEstimator::new(&ms);
        assert_eq!(
            est.estimate(&[0.0; 3], &[true; 3], 0.01),
            Err(EstimateError::DimensionMismatch)
        );
    }

    #[test]
    fn estimation_ignores_undelivered_rows() {
        let ms = MeasurementSet::full(case5());
        let (mut z, truth) = synthesize_measurements(&ms, 0.0, 9);
        // Corrupt a measurement, then mark it undelivered: the estimate
        // must still match the truth.
        z[0] += 100.0;
        let mut delivered = vec![true; ms.len()];
        delivered[0] = false;
        let est = DcEstimator::new(&ms);
        let e = est.estimate(&z, &delivered, 0.01).unwrap();
        for (got, want) in e.angles.iter().zip(truth.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
    }
}
