//! Property test: synthetically generated SCADA systems survive a trip
//! through the textual config format with all verification-relevant
//! structure intact.

use powergrid::ieee::ieee14;
use powergrid::synthetic::synthetic_system;
use proptest::prelude::*;
use scadasim::{generate, parse_config, write_config, ScadaConfig, ScadaGenConfig};

fn round_trip(seed: u64, hierarchy: usize, density: f64, buses: usize) {
    let system = if buses == 14 {
        ieee14()
    } else {
        synthetic_system("rt", buses, buses + buses / 3, seed)
    };
    let generated = generate(
        system,
        &ScadaGenConfig {
            measurement_density: density,
            hierarchy_level: hierarchy,
            seed,
            ..Default::default()
        },
    );
    let config = ScadaConfig {
        measurements: generated.measurements,
        topology: generated.topology,
        ied_measurements: generated.ied_measurements,
        resilience: (1, 1),
        corrupted: 1,
        link_failures: 0,
    };
    let text = write_config(&config);
    let parsed = parse_config(&text)
        .unwrap_or_else(|e| panic!("seed {seed}: generated config fails to parse: {e}"));
    assert_eq!(
        parsed.measurements.kinds(),
        config.measurements.kinds(),
        "seed {seed}: measurement kinds changed"
    );
    assert_eq!(
        parsed.topology.links().len(),
        config.topology.links().len(),
        "seed {seed}: link count changed"
    );
    assert_eq!(
        parsed.ied_measurements, config.ied_measurements,
        "seed {seed}: IED association changed"
    );
    assert_eq!(
        parsed.topology.pair_security_entries().count(),
        config.topology.pair_security_entries().count(),
        "seed {seed}: security entries changed"
    );
    // And the parsed topology is still valid.
    assert!(parsed.topology.validate().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_configs_round_trip(
        seed in 0u64..10_000,
        hierarchy in 1usize..4,
        density in 0.3f64..1.0,
        buses in prop_oneof![Just(9usize), Just(14), Just(20)],
    ) {
        round_trip(seed, hierarchy, density, buses);
    }
}
