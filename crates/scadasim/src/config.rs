//! Textual configuration format.
//!
//! A line-based, sectioned format mirroring the paper's Table II input:
//! the bus system, the measurement list, the SCADA devices and links,
//! the IED→measurement association, per-pair security profiles, and the
//! resiliency specification. See `parse_config` for the grammar and
//! [`write_config`] for the inverse.
//!
//! ```text
//! # the 2-bus smallest example
//! [buses]
//! 2
//! [lines]
//! 1 2 16.9
//! [measurements]
//! flow 1 2
//! injection 2
//! [devices]
//! ied 1
//! rtu 2
//! mtu 3
//! [links]
//! 1 2
//! 2 3
//! [ied-measurements]
//! 1 1 2
//! [security]
//! 1 2 chap 64 sha2 128
//! [spec]
//! resilience 1 0
//! corrupted 1
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use powergrid::{Branch, BusId, MeasurementId, MeasurementKind, MeasurementSet, PowerSystem};

use crate::crypto::CryptoProfile;
use crate::device::{Device, DeviceId, DeviceKind};
use crate::topology::{Link, Topology};

/// A parsed configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScadaConfig {
    /// The measurements (owning the power system).
    pub measurements: MeasurementSet,
    /// The SCADA topology with pair security installed.
    pub topology: Topology,
    /// Which measurements each IED records.
    pub ied_measurements: Vec<(DeviceId, Vec<MeasurementId>)>,
    /// Resiliency specification `(k1, k2)`: tolerated IED and RTU
    /// failures.
    pub resilience: (usize, usize),
    /// Tolerated corrupted measurements (`r` of the paper).
    pub corrupted: usize,
    /// Additional tolerated link failures (extension; 0 = paper
    /// semantics).
    pub link_failures: usize,
}

/// Error from [`parse_config`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseConfigError {}

fn err(line: usize, message: impl Into<String>) -> ParseConfigError {
    ParseConfigError {
        line,
        message: message.into(),
    }
}

/// Parses the sectioned text format.
///
/// # Errors
///
/// Returns [`ParseConfigError`] on unknown sections/keywords, dangling
/// references (measurement or device numbers out of range), or missing
/// mandatory sections.
pub fn parse_config(text: &str) -> Result<ScadaConfig, ParseConfigError> {
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        None,
        Buses,
        Lines,
        Measurements,
        Devices,
        Links,
        IedMeasurements,
        Security,
        Spec,
    }
    let mut section = Section::None;
    let mut n_buses: Option<usize> = None;
    let mut lines_raw: Vec<(usize, usize, f64)> = Vec::new();
    let mut meas_raw: Vec<(usize, Vec<String>)> = Vec::new();
    let mut devices_raw: Vec<(usize, DeviceKind, usize)> = Vec::new();
    let mut links_raw: Vec<(usize, usize, usize)> = Vec::new();
    let mut ied_meas_raw: Vec<(usize, usize, Vec<usize>)> = Vec::new();
    let mut security_raw: Vec<(usize, usize, usize, Vec<CryptoProfile>)> = Vec::new();
    let mut resilience = (0usize, 0usize);
    let mut corrupted = 0usize;
    let mut link_failures = 0usize;

    for (lineno, raw) in text.lines().enumerate() {
        let ln = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| err(ln, "unclosed section"))?;
            section = match name {
                "buses" => Section::Buses,
                "lines" => Section::Lines,
                "measurements" => Section::Measurements,
                "devices" => Section::Devices,
                "links" => Section::Links,
                "ied-measurements" => Section::IedMeasurements,
                "security" => Section::Security,
                "spec" => Section::Spec,
                other => return Err(err(ln, format!("unknown section `{other}`"))),
            };
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match section {
            Section::None => return Err(err(ln, "content before first section")),
            Section::Buses => {
                n_buses = Some(tokens[0].parse().map_err(|_| err(ln, "bad bus count"))?);
            }
            Section::Lines => {
                if tokens.len() != 3 {
                    return Err(err(ln, "expected `from to susceptance`"));
                }
                let f = tokens[0].parse().map_err(|_| err(ln, "bad bus"))?;
                let t = tokens[1].parse().map_err(|_| err(ln, "bad bus"))?;
                let s = tokens[2].parse().map_err(|_| err(ln, "bad susceptance"))?;
                lines_raw.push((f, t, s));
            }
            Section::Measurements => {
                meas_raw.push((ln, tokens.iter().map(|s| s.to_string()).collect()));
            }
            Section::Devices => {
                if tokens.len() != 2 {
                    return Err(err(ln, "expected `kind number`"));
                }
                let kind = match tokens[0] {
                    "ied" => DeviceKind::Ied,
                    "rtu" => DeviceKind::Rtu,
                    "mtu" => DeviceKind::Mtu,
                    "router" => DeviceKind::Router,
                    other => return Err(err(ln, format!("unknown device kind `{other}`"))),
                };
                let num = tokens[1]
                    .parse()
                    .map_err(|_| err(ln, "bad device number"))?;
                devices_raw.push((ln, kind, num));
            }
            Section::Links => {
                if tokens.len() != 2 {
                    return Err(err(ln, "expected `device device`"));
                }
                let a = tokens[0].parse().map_err(|_| err(ln, "bad device"))?;
                let b = tokens[1].parse().map_err(|_| err(ln, "bad device"))?;
                links_raw.push((ln, a, b));
            }
            Section::IedMeasurements => {
                if tokens.len() < 2 {
                    return Err(err(ln, "expected `ied meas...`"));
                }
                let ied = tokens[0].parse().map_err(|_| err(ln, "bad device"))?;
                let ms: Result<Vec<usize>, _> = tokens[1..].iter().map(|t| t.parse()).collect();
                ied_meas_raw.push((ln, ied, ms.map_err(|_| err(ln, "bad measurement id"))?));
            }
            Section::Security => {
                if tokens.len() < 4 || !tokens.len().is_multiple_of(2) {
                    return Err(err(ln, "expected `dev dev (algo bits)+`"));
                }
                let a = tokens[0].parse().map_err(|_| err(ln, "bad device"))?;
                let b = tokens[1].parse().map_err(|_| err(ln, "bad device"))?;
                let mut profiles = Vec::new();
                for pair in tokens[2..].chunks(2) {
                    let profile: CryptoProfile = format!("{} {}", pair[0], pair[1])
                        .parse()
                        .map_err(|e| err(ln, format!("{e}")))?;
                    profiles.push(profile);
                }
                security_raw.push((ln, a, b, profiles));
            }
            Section::Spec => match tokens[0] {
                "resilience" => {
                    if tokens.len() != 3 {
                        return Err(err(ln, "expected `resilience k1 k2`"));
                    }
                    resilience = (
                        tokens[1].parse().map_err(|_| err(ln, "bad k1"))?,
                        tokens[2].parse().map_err(|_| err(ln, "bad k2"))?,
                    );
                }
                "corrupted" => {
                    corrupted = tokens[1].parse().map_err(|_| err(ln, "bad r"))?;
                }
                "links" => {
                    link_failures = tokens[1].parse().map_err(|_| err(ln, "bad link budget"))?;
                }
                other => return Err(err(ln, format!("unknown spec `{other}`"))),
            },
        }
    }

    let n_buses = n_buses.ok_or_else(|| err(0, "missing [buses] section"))?;
    let branches: Vec<Branch> = lines_raw
        .iter()
        .map(|&(f, t, s)| Branch::new(BusId::from_one_based(f), BusId::from_one_based(t), s))
        .collect();
    let system = PowerSystem::new("config", n_buses, branches);

    // Measurements.
    let mut kinds = Vec::new();
    for (ln, tokens) in &meas_raw {
        let kind = match tokens[0].as_str() {
            "flow" | "flowback" => {
                if tokens.len() != 3 {
                    return Err(err(*ln, "expected `flow from to`"));
                }
                let f: usize = tokens[1].parse().map_err(|_| err(*ln, "bad bus"))?;
                let t: usize = tokens[2].parse().map_err(|_| err(*ln, "bad bus"))?;
                let a = BusId::from_one_based(f);
                let b = BusId::from_one_based(t);
                let branch = system
                    .branch_between(a, b)
                    .ok_or_else(|| err(*ln, format!("no line between bus{f} and bus{t}")))?;
                // `flow a b` measures at the `a` end: forward if the line
                // is stored as a→b, backward otherwise.
                let stored = system.branch(branch);
                let forward = stored.from == a;
                if tokens[0] == "flow" {
                    if forward {
                        MeasurementKind::FlowForward(branch)
                    } else {
                        MeasurementKind::FlowBackward(branch)
                    }
                } else if forward {
                    MeasurementKind::FlowBackward(branch)
                } else {
                    MeasurementKind::FlowForward(branch)
                }
            }
            "injection" => {
                let b: usize = tokens[1].parse().map_err(|_| err(*ln, "bad bus"))?;
                MeasurementKind::Injection(BusId::from_one_based(b))
            }
            other => return Err(err(*ln, format!("unknown measurement kind `{other}`"))),
        };
        kinds.push(kind);
    }
    let measurements = MeasurementSet::new(system, kinds);

    // Devices: numbers must be dense 1..=n but may appear in any order.
    let max_dev = devices_raw.iter().map(|&(_, _, n)| n).max().unwrap_or(0);
    let mut kinds_by_num: Vec<Option<DeviceKind>> = vec![None; max_dev];
    for &(ln, kind, num) in &devices_raw {
        if num == 0 || num > max_dev {
            return Err(err(ln, "device numbers are 1-based"));
        }
        if kinds_by_num[num - 1].replace(kind).is_some() {
            return Err(err(ln, format!("duplicate device {num}")));
        }
    }
    let mut devices = Vec::with_capacity(max_dev);
    for (i, k) in kinds_by_num.iter().enumerate() {
        let kind = k.ok_or_else(|| err(0, format!("device {} missing", i + 1)))?;
        devices.push(Device::new(DeviceId(i), kind));
    }
    let links: Vec<Link> = links_raw
        .iter()
        .map(|&(_, a, b)| Link::new(DeviceId::from_one_based(a), DeviceId::from_one_based(b)))
        .collect();
    for &(ln, a, b) in &links_raw {
        if a == 0 || a > max_dev || b == 0 || b > max_dev {
            return Err(err(ln, "link references unknown device"));
        }
    }
    let mut topology = Topology::new(devices, links);
    for (ln, a, b, profiles) in security_raw {
        if a == 0 || a > max_dev || b == 0 || b > max_dev {
            return Err(err(ln, "security entry references unknown device"));
        }
        topology.set_pair_security(
            DeviceId::from_one_based(a),
            DeviceId::from_one_based(b),
            profiles,
        );
    }

    // IED measurement association.
    let mut ied_measurements = Vec::new();
    let mut claimed: HashMap<usize, usize> = HashMap::new();
    for (ln, ied, ms) in ied_meas_raw {
        if ied == 0 || ied > max_dev {
            return Err(err(ln, "unknown IED"));
        }
        let id = DeviceId::from_one_based(ied);
        if topology.device(id).kind() != DeviceKind::Ied {
            return Err(err(ln, format!("device {ied} is not an IED")));
        }
        let mut mids = Vec::new();
        for m in ms {
            if m == 0 || m > measurements.len() {
                return Err(err(ln, format!("unknown measurement {m}")));
            }
            if let Some(prev) = claimed.insert(m, ied) {
                return Err(err(
                    ln,
                    format!("measurement {m} already recorded by IED {prev}"),
                ));
            }
            mids.push(MeasurementId(m - 1));
        }
        ied_measurements.push((id, mids));
    }

    Ok(ScadaConfig {
        measurements,
        topology,
        ied_measurements,
        resilience,
        corrupted,
        link_failures,
    })
}

/// Serializes a configuration back to the text format.
pub fn write_config(config: &ScadaConfig) -> String {
    let mut out = String::new();
    let sys = config.measurements.system();
    out.push_str("[buses]\n");
    let _ = writeln!(out, "{}", sys.num_buses());
    out.push_str("[lines]\n");
    for b in sys.branches() {
        let _ = writeln!(
            out,
            "{} {} {:.4}",
            b.from.index() + 1,
            b.to.index() + 1,
            b.susceptance
        );
    }
    out.push_str("[measurements]\n");
    for id in config.measurements.ids() {
        match config.measurements.kind(id) {
            MeasurementKind::FlowForward(br) => {
                let b = sys.branch(br);
                let _ = writeln!(out, "flow {} {}", b.from.index() + 1, b.to.index() + 1);
            }
            MeasurementKind::FlowBackward(br) => {
                let b = sys.branch(br);
                let _ = writeln!(out, "flow {} {}", b.to.index() + 1, b.from.index() + 1);
            }
            MeasurementKind::Injection(b) => {
                let _ = writeln!(out, "injection {}", b.index() + 1);
            }
        }
    }
    out.push_str("[devices]\n");
    for d in config.topology.devices() {
        let kind = match d.kind() {
            DeviceKind::Ied => "ied",
            DeviceKind::Rtu => "rtu",
            DeviceKind::Mtu => "mtu",
            DeviceKind::Router => "router",
        };
        let _ = writeln!(out, "{} {}", kind, d.id().one_based());
    }
    out.push_str("[links]\n");
    for l in config.topology.links() {
        let _ = writeln!(out, "{} {}", l.a.one_based(), l.b.one_based());
    }
    out.push_str("[ied-measurements]\n");
    for (ied, ms) in &config.ied_measurements {
        let list: Vec<String> = ms.iter().map(|m| (m.index() + 1).to_string()).collect();
        let _ = writeln!(out, "{} {}", ied.one_based(), list.join(" "));
    }
    out.push_str("[security]\n");
    let mut entries: Vec<_> = config.topology.pair_security_entries().collect();
    entries.sort_by_key(|&(a, b, _)| (a, b));
    for (a, b, profiles) in entries {
        let ps: Vec<String> = profiles.iter().map(|p| p.to_string()).collect();
        let _ = writeln!(out, "{} {} {}", a.one_based(), b.one_based(), ps.join(" "));
    }
    out.push_str("[spec]\n");
    let _ = writeln!(
        out,
        "resilience {} {}",
        config.resilience.0, config.resilience.1
    );
    let _ = writeln!(out, "corrupted {}", config.corrupted);
    if config.link_failures > 0 {
        let _ = writeln!(out, "links {}", config.link_failures);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "
# smallest useful system
[buses]
2
[lines]
1 2 16.9
[measurements]
flow 1 2
flow 2 1
injection 2
[devices]
ied 1
rtu 2
mtu 3
[links]
1 2
2 3
[ied-measurements]
1 1 2
[security]
1 2 chap 64 sha2 128
[spec]
resilience 1 0
corrupted 1
";

    #[test]
    fn parses_small_config() {
        let c = parse_config(SMALL).unwrap();
        assert_eq!(c.measurements.system().num_buses(), 2);
        assert_eq!(c.measurements.len(), 3);
        assert_eq!(c.topology.num_devices(), 3);
        assert_eq!(c.resilience, (1, 0));
        assert_eq!(c.corrupted, 1);
        assert_eq!(c.ied_measurements.len(), 1);
        assert_eq!(c.ied_measurements[0].1.len(), 2);
        // `flow 2 1` on a line stored 1→2 is a backward flow.
        assert!(matches!(
            c.measurements.kind(MeasurementId(1)),
            MeasurementKind::FlowBackward(_)
        ));
        assert!(c.topology.validate().is_empty());
    }

    #[test]
    fn round_trip() {
        let c = parse_config(SMALL).unwrap();
        let text = write_config(&c);
        let again = parse_config(&text).unwrap();
        assert_eq!(c, again);
    }

    #[test]
    fn rejects_unknown_section() {
        assert!(parse_config("[nope]\n1\n").is_err());
    }

    #[test]
    fn rejects_unknown_line_reference() {
        let bad = SMALL.replace("flow 1 2", "flow 1 3");
        let e = parse_config(&bad).unwrap_err();
        assert!(e.message.contains("no line"), "{e}");
    }

    #[test]
    fn rejects_doubly_recorded_measurement() {
        let bad = SMALL.replace("1 1 2", "1 1 2\n1 2");
        // Second entry re-claims measurement 2 — but it's also not dense;
        // either way it must fail.
        assert!(parse_config(&bad).is_err());
    }

    #[test]
    fn rejects_non_ied_recording() {
        let bad = SMALL.replace("[ied-measurements]\n1 1 2", "[ied-measurements]\n2 1 2");
        let e = parse_config(&bad).unwrap_err();
        assert!(e.message.contains("not an IED"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let commented = SMALL.replace("[buses]", "# leading comment\n\n[buses] # trailing");
        assert!(parse_config(&commented).is_ok());
    }

    #[test]
    fn missing_device_number_detected() {
        let bad = SMALL.replace("ied 1", "ied 4");
        assert!(parse_config(&bad).is_err());
    }
}
