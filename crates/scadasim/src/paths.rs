//! Forwarding-path enumeration.
//!
//! The paper's delivery constraint quantifies over `P_I`, the set of
//! forwarding paths from IED `I` to the MTU. Paths are simple, their
//! interior consists of forwarding devices only (RTUs and routers), and
//! only up links are traversed. Enumeration is capped: SCADA topologies
//! are tree-like so the bound is rarely hit, but adversarially meshed
//! RTU layers could otherwise blow up.

use crate::device::{DeviceId, DeviceKind};
use crate::topology::Topology;

/// Limits on path enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathLimits {
    /// Maximum number of paths per IED.
    pub max_paths: usize,
    /// Maximum path length in hops.
    pub max_hops: usize,
}

impl Default for PathLimits {
    fn default() -> PathLimits {
        PathLimits {
            max_paths: 64,
            max_hops: 16,
        }
    }
}

/// A forwarding path: the device sequence from the IED to the MTU,
/// inclusive of both endpoints.
pub type ForwardingPath = Vec<DeviceId>;

/// Enumerates all simple forwarding paths from `ied` to the MTU.
///
/// Interior nodes must be able to forward (RTU or router); hops must be
/// protocol- and crypto-compatible (the paper's pairing predicates —
/// statically incompatible hops can never carry data, so paths through
/// them are not paths). Retired devices carry no paths at all: a
/// retired IED has no paths, and no path traverses a retired device.
pub fn forwarding_paths(
    topology: &Topology,
    ied: DeviceId,
    limits: &PathLimits,
) -> Vec<ForwardingPath> {
    if topology.device(ied).retired() {
        return Vec::new();
    }
    let mtu = topology.mtu();
    let mut paths = Vec::new();
    let mut visited = vec![false; topology.num_devices()];
    let mut current = vec![ied];
    visited[ied.index()] = true;
    dfs(
        topology,
        mtu,
        limits,
        &mut visited,
        &mut current,
        &mut paths,
    );
    paths
}

fn dfs(
    topology: &Topology,
    mtu: DeviceId,
    limits: &PathLimits,
    visited: &mut Vec<bool>,
    current: &mut Vec<DeviceId>,
    paths: &mut Vec<ForwardingPath>,
) {
    if paths.len() >= limits.max_paths {
        return;
    }
    let here = *current.last().expect("path is never empty");
    if here == mtu {
        paths.push(current.clone());
        return;
    }
    if current.len() > limits.max_hops {
        return;
    }
    for next in topology.neighbors(here) {
        if visited[next.index()] {
            continue;
        }
        // Interior hops must be forwarders; the terminal hop is the MTU.
        // Retired devices never relay.
        let device = topology.device(next);
        if device.retired() {
            continue;
        }
        if next != mtu && !device.kind().can_forward() {
            continue;
        }
        if !topology.hop_compatible(here, next) {
            continue;
        }
        visited[next.index()] = true;
        current.push(next);
        dfs(topology, mtu, limits, visited, current, paths);
        current.pop();
        visited[next.index()] = false;
    }
}

/// Collapses routers out of a forwarding path, yielding the sequence of
/// *security hops*: consecutive (device, device) pairs between
/// non-router devices. Security profiles are configured between
/// communicating hosts; routers in between are transparent.
pub fn security_hops(topology: &Topology, path: &[DeviceId]) -> Vec<(DeviceId, DeviceId)> {
    let hosts: Vec<DeviceId> = path
        .iter()
        .copied()
        .filter(|&d| topology.device(d).kind() != DeviceKind::Router)
        .collect();
    hosts.windows(2).map(|w| (w[0], w[1])).collect()
}

/// The link indices traversed by a forwarding path, in hop order.
///
/// # Panics
///
/// Panics if consecutive path devices are not joined by an up link (the
/// path did not come from [`forwarding_paths`] on this topology).
pub fn links_of_path(topology: &Topology, path: &[DeviceId]) -> Vec<usize> {
    path.windows(2)
        .map(|w| {
            topology
                .link_index_between(w[0], w[1])
                .unwrap_or_else(|| panic!("no up link between {} and {}", w[0], w[1]))
        })
        .collect()
}

/// Whether a forwarding path is *secured* end to end under a policy.
///
/// Security profiles bind pairs of hosts. A profile between
/// non-adjacent hosts acts as a tunnel: intermediate forwarders relay
/// the protected payload without terminating its security (this is how
/// the paper's RTU9↔MTU profile keeps securing RTU 9's data when, in the
/// Fig 4 variant, it is relayed through RTU 12). A path is secured iff
/// its host sequence (routers collapsed) can be decomposed into
/// consecutive segments, each covered by a profile that is both
/// authenticated and integrity-protected:
///
/// * adjacent hosts may use their explicit pair profile or a shared
///   device suite,
/// * a tunnel segment (non-adjacent hosts) requires an explicit pair
///   profile.
pub fn path_secured(
    topology: &Topology,
    policy: &crate::policy::SecurityPolicy,
    path: &[DeviceId],
) -> bool {
    let hosts: Vec<DeviceId> = path
        .iter()
        .copied()
        .filter(|&d| topology.device(d).kind() != DeviceKind::Router)
        .collect();
    if hosts.len() <= 1 {
        return true;
    }
    let m = hosts.len();
    // reachable[i]: the prefix ending at hosts[i] is fully covered.
    let mut reachable = vec![false; m];
    reachable[0] = true;
    for j in 1..m {
        for i in 0..j {
            if !reachable[i] {
                continue;
            }
            let (a, b) = (hosts[i], hosts[j]);
            let covered = if j == i + 1 {
                policy.hop_secured(&topology.pair_security(a, b))
            } else {
                topology
                    .explicit_pair_security(a, b)
                    .is_some_and(|profiles| policy.hop_secured(profiles))
            };
            if covered {
                reachable[j] = true;
                break;
            }
        }
    }
    reachable[m - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::topology::Link;

    /// The Fig-3 shape in miniature: 2 IEDs, 2 RTUs, router, MTU.
    fn mesh() -> Topology {
        let mut devices = vec![
            Device::new(DeviceId(0), DeviceKind::Ied),
            Device::new(DeviceId(1), DeviceKind::Ied),
            Device::new(DeviceId(2), DeviceKind::Rtu),
            Device::new(DeviceId(3), DeviceKind::Rtu),
            Device::new(DeviceId(4), DeviceKind::Router),
            Device::new(DeviceId(5), DeviceKind::Mtu),
        ];
        devices.truncate(6);
        let links = vec![
            Link::new(DeviceId(0), DeviceId(2)),
            Link::new(DeviceId(1), DeviceId(3)),
            Link::new(DeviceId(2), DeviceId(3)), // RTU-RTU cross link
            Link::new(DeviceId(2), DeviceId(4)),
            Link::new(DeviceId(3), DeviceId(4)),
            Link::new(DeviceId(4), DeviceId(5)),
        ];
        Topology::new(devices, links)
    }

    #[test]
    fn enumerates_all_simple_paths() {
        let t = mesh();
        let paths = forwarding_paths(&t, DeviceId(0), &PathLimits::default());
        // 0-2-4-5 and 0-2-3-4-5.
        assert_eq!(paths.len(), 2);
        assert!(paths.contains(&vec![DeviceId(0), DeviceId(2), DeviceId(4), DeviceId(5)]));
        assert!(paths.contains(&vec![
            DeviceId(0),
            DeviceId(2),
            DeviceId(3),
            DeviceId(4),
            DeviceId(5)
        ]));
    }

    #[test]
    fn paths_never_route_through_ieds() {
        let t = mesh();
        for ied in [DeviceId(0), DeviceId(1)] {
            for p in forwarding_paths(&t, ied, &PathLimits::default()) {
                for &d in &p[1..p.len() - 1] {
                    assert!(t.device(d).kind().can_forward(), "{d} in interior");
                }
            }
        }
    }

    #[test]
    fn max_paths_cap_respected() {
        let t = mesh();
        let limits = PathLimits {
            max_paths: 1,
            max_hops: 16,
        };
        assert_eq!(forwarding_paths(&t, DeviceId(0), &limits).len(), 1);
    }

    #[test]
    fn max_hops_cap_respected() {
        let t = mesh();
        let limits = PathLimits {
            max_paths: 64,
            max_hops: 3,
        };
        // Only the 3-hop path survives.
        let paths = forwarding_paths(&t, DeviceId(0), &limits);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 4);
    }

    #[test]
    fn security_hops_collapse_routers() {
        let t = mesh();
        let path = vec![DeviceId(0), DeviceId(2), DeviceId(4), DeviceId(5)];
        let hops = security_hops(&t, &path);
        assert_eq!(
            hops,
            vec![(DeviceId(0), DeviceId(2)), (DeviceId(2), DeviceId(5))]
        );
    }

    #[test]
    fn retired_devices_carry_no_paths() {
        let mut t = mesh();
        // Retiring RTU 2 removes the paths through it; IED 0 still
        // reaches the MTU through nothing (its only uplink is RTU 2).
        t.retire_device(DeviceId(2));
        assert!(forwarding_paths(&t, DeviceId(0), &PathLimits::default()).is_empty());
        // IED 1 keeps its RTU-3 path, which no longer detours via RTU 2.
        let survivors = forwarding_paths(&t, DeviceId(1), &PathLimits::default());
        assert!(!survivors.is_empty());
        for p in &survivors {
            assert!(!p.contains(&DeviceId(2)));
        }
        // A retired start IED has no paths at all.
        let mut t2 = mesh();
        t2.retire_device(DeviceId(0));
        assert!(forwarding_paths(&t2, DeviceId(0), &PathLimits::default()).is_empty());
    }

    #[test]
    fn incompatible_hop_blocks_path() {
        use crate::protocol::Protocol;
        let mut devices = mesh().devices().to_vec();
        // IED 0 speaks only Modbus, its RTU only DNP3 → no path.
        devices[0] =
            Device::new(DeviceId(0), DeviceKind::Ied).with_protocols(vec![Protocol::Modbus]);
        devices[2] = Device::new(DeviceId(2), DeviceKind::Rtu).with_protocols(vec![Protocol::Dnp3]);
        let t = Topology::new(devices, mesh().links().to_vec());
        assert!(forwarding_paths(&t, DeviceId(0), &PathLimits::default()).is_empty());
        // The other IED is unaffected.
        assert!(!forwarding_paths(&t, DeviceId(1), &PathLimits::default()).is_empty());
    }
}
