//! SCADA communication topology.
//!
//! Devices, point-to-point links (a link may abstract a routed path, as
//! the paper allows), and per-host-pair security profiles (Table II's
//! "security profile between the communicating entities").

use std::collections::HashMap;
use std::fmt;

use crate::crypto::CryptoProfile;
use crate::device::{Device, DeviceId, DeviceKind};
use crate::policy::SecurityPolicy;

/// The physical medium of a link (the paper's "link type, including the
/// medium type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinkMedium {
    /// Wired Ethernet.
    #[default]
    Ethernet,
    /// Radio / microwave.
    Wireless,
    /// Serial line or leased modem.
    Serial,
    /// Optical fiber.
    Fiber,
}

impl std::fmt::Display for LinkMedium {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            LinkMedium::Ethernet => "ethernet",
            LinkMedium::Wireless => "wireless",
            LinkMedium::Serial => "serial",
            LinkMedium::Fiber => "fiber",
        };
        f.write_str(name)
    }
}

/// A communication link between two devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// One endpoint.
    pub a: DeviceId,
    /// The other endpoint.
    pub b: DeviceId,
    /// Whether the link is up (the paper's `LinkStatus`).
    pub up: bool,
    /// Physical medium.
    pub medium: LinkMedium,
    /// Nominal bandwidth in kbit/s.
    pub bandwidth_kbps: u32,
}

impl Link {
    /// Creates an Ethernet link that is up (10 Mbit/s nominal).
    pub fn new(a: DeviceId, b: DeviceId) -> Link {
        Link {
            a,
            b,
            up: true,
            medium: LinkMedium::Ethernet,
            bandwidth_kbps: 10_000,
        }
    }

    /// Sets the medium (builder style).
    pub fn with_medium(mut self, medium: LinkMedium) -> Link {
        self.medium = medium;
        self
    }

    /// Sets the nominal bandwidth (builder style).
    pub fn with_bandwidth_kbps(mut self, kbps: u32) -> Link {
        self.bandwidth_kbps = kbps;
        self
    }

    /// The endpoint that is not `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not an endpoint.
    pub fn other_end(&self, d: DeviceId) -> DeviceId {
        if self.a == d {
            self.b
        } else if self.b == d {
            self.a
        } else {
            panic!("{d} is not an endpoint of this link")
        }
    }
}

/// Errors detected by [`Topology::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Not exactly one MTU.
    MtuCount(usize),
    /// A link references an unknown device.
    UnknownDevice(DeviceId),
    /// A link joins a device to itself.
    SelfLink(DeviceId),
    /// Some IED cannot reach the MTU even with everything up.
    Unreachable(DeviceId),
    /// An IED is used as a forwarding hop (IEDs never relay).
    IedForwarding(DeviceId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::MtuCount(n) => {
                write!(f, "expected exactly one MTU, found {n}")
            }
            TopologyError::UnknownDevice(d) => write!(f, "link references unknown {d}"),
            TopologyError::SelfLink(d) => write!(f, "self-link at {d}"),
            TopologyError::Unreachable(d) => {
                write!(f, "{d} cannot reach the MTU on any path")
            }
            TopologyError::IedForwarding(d) => {
                write!(f, "IED {d} appears as a forwarding hop")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A SCADA network: devices, links, and pair security profiles.
///
/// # Examples
///
/// ```
/// use scadasim::{Device, DeviceId, DeviceKind, Link, Topology};
///
/// let ied = Device::new(DeviceId(0), DeviceKind::Ied);
/// let rtu = Device::new(DeviceId(1), DeviceKind::Rtu);
/// let mtu = Device::new(DeviceId(2), DeviceKind::Mtu);
/// let topo = Topology::new(
///     vec![ied, rtu, mtu],
///     vec![Link::new(DeviceId(0), DeviceId(1)), Link::new(DeviceId(1), DeviceId(2))],
/// );
/// assert!(topo.validate().is_empty());
/// assert_eq!(topo.mtu(), DeviceId(2));
/// assert_eq!(topo.ieds().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    devices: Vec<Device>,
    links: Vec<Link>,
    /// Explicit security profiles per (unordered) device pair.
    pair_security: HashMap<(DeviceId, DeviceId), Vec<CryptoProfile>>,
    /// `adjacency[d]` = link indices incident to device `d`.
    adjacency: Vec<Vec<usize>>,
}

fn pair_key(a: DeviceId, b: DeviceId) -> (DeviceId, DeviceId) {
    (a.min(b), a.max(b))
}

impl Topology {
    /// Creates a topology.
    ///
    /// # Panics
    ///
    /// Panics if device ids are not the dense sequence `0..n` in order
    /// (construct devices with their positional ids).
    pub fn new(devices: Vec<Device>, links: Vec<Link>) -> Topology {
        for (i, d) in devices.iter().enumerate() {
            assert_eq!(d.id().index(), i, "device ids must be dense and ordered");
        }
        let mut adjacency = vec![Vec::new(); devices.len()];
        for (li, l) in links.iter().enumerate() {
            if l.a.index() < devices.len() {
                adjacency[l.a.index()].push(li);
            }
            if l.b.index() < devices.len() {
                adjacency[l.b.index()].push(li);
            }
        }
        Topology {
            devices,
            links,
            pair_security: HashMap::new(),
            adjacency,
        }
    }

    /// Attaches security profiles to a device pair (replacing previous
    /// ones for that pair).
    pub fn set_pair_security(&mut self, a: DeviceId, b: DeviceId, profiles: Vec<CryptoProfile>) {
        self.pair_security.insert(pair_key(a, b), profiles);
    }

    /// Appends a device (model-patch support). Ids are dense positional
    /// indices, so the new device must carry id `num_devices()`.
    ///
    /// # Panics
    ///
    /// Panics if the device id is not the next dense index.
    pub fn push_device(&mut self, device: Device) -> DeviceId {
        assert_eq!(
            device.id().index(),
            self.devices.len(),
            "device ids must be dense and ordered"
        );
        let id = device.id();
        self.devices.push(device);
        self.adjacency.push(Vec::new());
        id
    }

    /// Appends a link (model-patch support), maintaining adjacency.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is unknown.
    pub fn push_link(&mut self, link: Link) -> usize {
        assert!(
            link.a.index() < self.devices.len() && link.b.index() < self.devices.len(),
            "link endpoint out of range"
        );
        let li = self.links.len();
        self.links.push(link);
        self.adjacency[link.a.index()].push(li);
        self.adjacency[link.b.index()].push(li);
        li
    }

    /// Re-homes an existing link onto new endpoints (model-patch
    /// support). The link keeps its index, status, medium, and
    /// bandwidth — only the endpoints move — so failure-budget
    /// semantics over link indices are preserved.
    ///
    /// # Panics
    ///
    /// Panics if the link index or an endpoint is out of range.
    pub fn rewire_link(&mut self, index: usize, a: DeviceId, b: DeviceId) {
        assert!(index < self.links.len(), "link index out of range");
        assert!(
            a.index() < self.devices.len() && b.index() < self.devices.len(),
            "link endpoint out of range"
        );
        let old = self.links[index];
        for end in [old.a, old.b] {
            self.adjacency[end.index()].retain(|&li| li != index);
        }
        self.links[index].a = a;
        self.links[index].b = b;
        self.adjacency[a.index()].push(index);
        if b != a {
            self.adjacency[b.index()].push(index);
        }
    }

    /// Retires a device in place (model-patch support): the slot stays,
    /// but the device stops participating in forwarding paths.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn retire_device(&mut self, id: DeviceId) {
        self.devices[id.index()].retire();
    }

    /// The security profiles of a device pair: the explicit entry if one
    /// exists, otherwise the intersection of the two devices' suites.
    pub fn pair_security(&self, a: DeviceId, b: DeviceId) -> Vec<CryptoProfile> {
        if let Some(explicit) = self.pair_security.get(&pair_key(a, b)) {
            return explicit.clone();
        }
        let da = self.device(a);
        let db = self.device(b);
        da.crypto_suites()
            .iter()
            .copied()
            .filter(|p| db.crypto_suites().contains(p))
            .collect()
    }

    /// The explicit security profiles configured for a device pair, if
    /// any (no fallback to device suites).
    pub fn explicit_pair_security(&self, a: DeviceId, b: DeviceId) -> Option<&[CryptoProfile]> {
        self.pair_security
            .get(&pair_key(a, b))
            .map(|v| v.as_slice())
    }

    /// All explicit pair-security entries.
    pub fn pair_security_entries(
        &self,
    ) -> impl Iterator<Item = (DeviceId, DeviceId, &[CryptoProfile])> {
        self.pair_security
            .iter()
            .map(|(&(a, b), v)| (a, b, v.as_slice()))
    }

    /// All devices, ordered by id.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The device with the given id.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Devices of a kind.
    pub fn devices_of_kind(&self, kind: DeviceKind) -> impl Iterator<Item = &Device> {
        self.devices.iter().filter(move |d| d.kind() == kind)
    }

    /// All IEDs.
    pub fn ieds(&self) -> impl Iterator<Item = &Device> {
        self.devices_of_kind(DeviceKind::Ied)
    }

    /// All RTUs.
    pub fn rtus(&self) -> impl Iterator<Item = &Device> {
        self.devices_of_kind(DeviceKind::Rtu)
    }

    /// The MTU.
    ///
    /// # Panics
    ///
    /// Panics if the topology does not have exactly one MTU; call
    /// [`Topology::validate`] first on untrusted input.
    pub fn mtu(&self) -> DeviceId {
        let mut it = self.devices_of_kind(DeviceKind::Mtu);
        let first = it.next().expect("topology has no MTU").id();
        assert!(it.next().is_none(), "topology has multiple MTUs");
        first
    }

    /// Neighbors of a device over *up* links.
    pub fn neighbors(&self, d: DeviceId) -> Vec<DeviceId> {
        self.adjacency[d.index()]
            .iter()
            .filter(|&&li| self.links[li].up)
            .map(|&li| self.links[li].other_end(d))
            .collect()
    }

    /// The index (into [`Topology::links`]) of the first *up* link
    /// joining two devices, if any.
    pub fn link_index_between(&self, a: DeviceId, b: DeviceId) -> Option<usize> {
        self.adjacency[a.index()]
            .iter()
            .copied()
            .find(|&li| self.links[li].up && self.links[li].other_end(a) == b)
    }

    /// Checks structural invariants; an empty vector means valid.
    pub fn validate(&self) -> Vec<TopologyError> {
        let mut errors = Vec::new();
        let mtus = self.devices_of_kind(DeviceKind::Mtu).count();
        if mtus != 1 {
            errors.push(TopologyError::MtuCount(mtus));
        }
        for l in &self.links {
            for end in [l.a, l.b] {
                if end.index() >= self.devices.len() {
                    errors.push(TopologyError::UnknownDevice(end));
                }
            }
            if l.a == l.b {
                errors.push(TopologyError::SelfLink(l.a));
            }
        }
        if mtus == 1 && errors.is_empty() {
            // Retired IEDs deliberately have no paths; they are not a
            // structural error (their failure can never matter).
            for ied in self.ieds().filter(|d| !d.retired()) {
                if crate::paths::forwarding_paths(self, ied.id(), &Default::default()).is_empty() {
                    errors.push(TopologyError::Unreachable(ied.id()));
                }
            }
        }
        errors
    }

    /// The paper's `CommProtoPairing` for a hop.
    pub fn protocol_pairing(&self, a: DeviceId, b: DeviceId) -> bool {
        self.device(a).protocol_pairing(self.device(b))
    }

    /// The paper's `CryptoPropPairing` for a hop: an explicit pair
    /// profile counts as a successful handshake; otherwise devices must
    /// be device-level compatible.
    pub fn crypto_pairing(&self, a: DeviceId, b: DeviceId) -> bool {
        if self.pair_security.contains_key(&pair_key(a, b)) {
            return true;
        }
        self.device(a).crypto_pairing(self.device(b))
    }

    /// Whether a hop can carry data at all (both pairings hold).
    pub fn hop_compatible(&self, a: DeviceId, b: DeviceId) -> bool {
        self.protocol_pairing(a, b) && self.crypto_pairing(a, b)
    }

    /// Whether a hop is *secured* under a policy. Hops where one side is
    /// a router inherit the end-to-end pair profile of the devices the
    /// router connects — routers are transparent for security — so this
    /// returns `true` for router hops and the caller must check the
    /// router-collapsed hop instead (see
    /// [`crate::paths::security_hops`]).
    pub fn hop_secured(&self, policy: &SecurityPolicy, a: DeviceId, b: DeviceId) -> bool {
        if self.device(a).kind() == DeviceKind::Router
            || self.device(b).kind() == DeviceKind::Router
        {
            return true;
        }
        policy.hop_secured(&self.pair_security(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::CryptoAlgorithm;

    fn simple() -> Topology {
        let devices = vec![
            Device::new(DeviceId(0), DeviceKind::Ied),
            Device::new(DeviceId(1), DeviceKind::Rtu),
            Device::new(DeviceId(2), DeviceKind::Mtu),
        ];
        let links = vec![
            Link::new(DeviceId(0), DeviceId(1)),
            Link::new(DeviceId(1), DeviceId(2)),
        ];
        Topology::new(devices, links)
    }

    #[test]
    fn valid_simple_topology() {
        let t = simple();
        assert!(t.validate().is_empty());
        assert_eq!(t.mtu(), DeviceId(2));
        assert_eq!(t.neighbors(DeviceId(1)), vec![DeviceId(0), DeviceId(2)]);
    }

    #[test]
    fn downed_link_removes_neighbor() {
        let mut t = simple();
        assert_eq!(t.neighbors(DeviceId(0)), vec![DeviceId(1)]);
        // Take the 0-1 link down via direct mutation of a rebuilt topology.
        let mut links = t.links().to_vec();
        links[0].up = false;
        t = Topology::new(t.devices().to_vec(), links);
        assert!(t.neighbors(DeviceId(0)).is_empty());
    }

    #[test]
    fn missing_mtu_detected() {
        let devices = vec![
            Device::new(DeviceId(0), DeviceKind::Ied),
            Device::new(DeviceId(1), DeviceKind::Rtu),
        ];
        let t = Topology::new(devices, vec![Link::new(DeviceId(0), DeviceId(1))]);
        assert!(t
            .validate()
            .iter()
            .any(|e| matches!(e, TopologyError::MtuCount(0))));
    }

    #[test]
    fn unreachable_ied_detected() {
        let devices = vec![
            Device::new(DeviceId(0), DeviceKind::Ied),
            Device::new(DeviceId(1), DeviceKind::Rtu),
            Device::new(DeviceId(2), DeviceKind::Mtu),
        ];
        // IED is isolated.
        let t = Topology::new(devices, vec![Link::new(DeviceId(1), DeviceId(2))]);
        assert!(t
            .validate()
            .iter()
            .any(|e| matches!(e, TopologyError::Unreachable(d) if d.index() == 0)));
    }

    #[test]
    fn pair_security_explicit_beats_suites() {
        let mut t = simple();
        let profile = CryptoProfile::new(CryptoAlgorithm::Sha2, 256);
        t.set_pair_security(DeviceId(1), DeviceId(0), vec![profile]);
        // Lookup is unordered.
        assert_eq!(t.pair_security(DeviceId(0), DeviceId(1)), vec![profile]);
        assert!(t.pair_security(DeviceId(1), DeviceId(2)).is_empty());
        // An explicit entry implies a successful handshake.
        assert!(t.crypto_pairing(DeviceId(0), DeviceId(1)));
    }

    #[test]
    fn push_device_and_link_maintain_adjacency() {
        let mut t = simple();
        let id = t.push_device(Device::new(DeviceId(3), DeviceKind::Ied));
        assert_eq!(id, DeviceId(3));
        t.push_link(Link::new(DeviceId(3), DeviceId(1)));
        assert_eq!(t.neighbors(DeviceId(3)), vec![DeviceId(1)]);
        assert!(t.neighbors(DeviceId(1)).contains(&DeviceId(3)));
        assert!(t.validate().is_empty());
    }

    #[test]
    fn rewire_link_moves_endpoints() {
        let mut t = simple();
        t.push_device(Device::new(DeviceId(3), DeviceKind::Rtu));
        t.push_link(Link::new(DeviceId(3), DeviceId(2)));
        // Re-home the IED from RTU 1 onto RTU 3.
        t.rewire_link(0, DeviceId(0), DeviceId(3));
        assert_eq!(t.neighbors(DeviceId(0)), vec![DeviceId(3)]);
        assert!(!t.neighbors(DeviceId(1)).contains(&DeviceId(0)));
        assert!(t.validate().is_empty());
        assert_eq!(t.links().len(), 3);
    }

    #[test]
    fn retired_ied_is_not_unreachable() {
        let mut t = simple();
        // Cut the IED off, then retire it: no Unreachable error.
        t.rewire_link(0, DeviceId(1), DeviceId(2));
        t.retire_device(DeviceId(0));
        assert!(t.validate().is_empty());
    }

    #[test]
    fn self_link_detected() {
        let devices = vec![
            Device::new(DeviceId(0), DeviceKind::Ied),
            Device::new(DeviceId(1), DeviceKind::Mtu),
        ];
        let t = Topology::new(
            devices,
            vec![
                Link::new(DeviceId(0), DeviceId(0)),
                Link::new(DeviceId(0), DeviceId(1)),
            ],
        );
        assert!(t
            .validate()
            .iter()
            .any(|e| matches!(e, TopologyError::SelfLink(_))));
    }
}
