//! Synthetic SCADA network generation.
//!
//! Reproduces the paper's evaluation methodology (§V-A): given a bus
//! system, sample a measurement set, create *one IED per two power-flow
//! measurements and one IED per consumption (injection) measurement*,
//! attach IEDs to RTUs, and build an RTU hierarchy whose depth — the
//! average number of RTUs on the path to the MTU — is the `hierarchy
//! level` parameter. Security profiles are drawn from a strong/weak
//! palette at a configurable rate. Everything is deterministic in the
//! seed.

use powergrid::{MeasurementId, MeasurementKind, MeasurementSet, PowerSystem};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::crypto::{CryptoAlgorithm, CryptoProfile};
use crate::device::{Device, DeviceId, DeviceKind};
use crate::topology::{Link, Topology};

/// Parameters of the synthetic SCADA generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScadaGenConfig {
    /// Fraction of the maximal measurement set to sample (the paper's
    /// measurement density, Fig 7a).
    pub measurement_density: f64,
    /// Number of RTU layers between IEDs and the MTU (the paper's
    /// hierarchy level, Figs 6 and 7b).
    pub hierarchy_level: usize,
    /// Average number of IEDs per leaf RTU.
    pub ieds_per_rtu: usize,
    /// Probability that a configured hop gets a *secured* profile
    /// (authenticated + integrity-protected under the DSN'16 policy);
    /// otherwise it gets a weak profile.
    pub secure_fraction: f64,
    /// Probability of adding a cross link between sibling RTUs in
    /// adjacent layers (more connectivity among RTUs — the mechanism the
    /// paper cites for the threat-space growth in Fig 7b).
    pub rtu_cross_links: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScadaGenConfig {
    fn default() -> ScadaGenConfig {
        ScadaGenConfig {
            measurement_density: 0.7,
            hierarchy_level: 1,
            ieds_per_rtu: 3,
            secure_fraction: 0.8,
            rtu_cross_links: 0.15,
            seed: 0,
        }
    }
}

/// A generated SCADA system: measurements, topology, and the IED to
/// measurement association.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedScada {
    /// The sampled measurement set.
    pub measurements: MeasurementSet,
    /// The SCADA topology (IEDs, RTU hierarchy, one MTU).
    pub topology: Topology,
    /// Which measurements each IED records (covers every measurement).
    pub ied_measurements: Vec<(DeviceId, Vec<MeasurementId>)>,
}

/// Generates a synthetic SCADA network for a power system.
///
/// # Panics
///
/// Panics if `hierarchy_level == 0` or `ieds_per_rtu == 0`.
pub fn generate(system: PowerSystem, cfg: &ScadaGenConfig) -> GeneratedScada {
    assert!(cfg.hierarchy_level >= 1, "hierarchy level is at least 1");
    assert!(cfg.ieds_per_rtu >= 1, "need at least one IED per RTU");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let measurements =
        MeasurementSet::sampled(system, cfg.measurement_density, cfg.seed ^ 0x5ca1ab1e);

    // ---- IEDs: one per two flow measurements, one per injection. ----
    let mut flow_ids: Vec<MeasurementId> = Vec::new();
    let mut injection_ids: Vec<MeasurementId> = Vec::new();
    for id in measurements.ids() {
        match measurements.kind(id) {
            MeasurementKind::Injection(_) => injection_ids.push(id),
            _ => flow_ids.push(id),
        }
    }
    flow_ids.shuffle(&mut rng);
    let mut ied_measurements: Vec<Vec<MeasurementId>> = Vec::new();
    for chunk in flow_ids.chunks(2) {
        ied_measurements.push(chunk.to_vec());
    }
    for id in injection_ids {
        ied_measurements.push(vec![id]);
    }
    let n_ieds = ied_measurements.len();

    // ---- Device list: IEDs, RTU layers, MTU. ----
    let mut devices: Vec<Device> = Vec::new();
    for i in 0..n_ieds {
        devices.push(Device::new(DeviceId(i), DeviceKind::Ied));
    }
    // Leaf RTUs: enough for the configured fan-in.
    let n_leaf_rtus = n_ieds.div_ceil(cfg.ieds_per_rtu).max(1);
    let mut layers: Vec<Vec<DeviceId>> = Vec::new();
    let mut next_id = n_ieds;
    let mut layer_size = n_leaf_rtus;
    for _ in 0..cfg.hierarchy_level {
        let layer: Vec<DeviceId> = (0..layer_size)
            .map(|_| {
                let id = DeviceId(next_id);
                next_id += 1;
                devices.push(Device::new(id, DeviceKind::Rtu));
                id
            })
            .collect();
        layers.push(layer);
        // Layers shrink toward the MTU but never vanish.
        layer_size = (layer_size / 2).max(1);
    }
    let mtu = DeviceId(next_id);
    devices.push(Device::new(mtu, DeviceKind::Mtu));

    // ---- Links. ----
    let mut links: Vec<Link> = Vec::new();
    // IEDs to random leaf RTUs.
    let leaf_layer = layers[0].clone();
    for i in 0..n_ieds {
        let rtu = leaf_layer[rng.random_range(0..leaf_layer.len())];
        links.push(Link::new(DeviceId(i), rtu));
    }
    // RTU layer l to layer l+1 (or the MTU from the top layer).
    for l in 0..layers.len() {
        let uppers: Vec<DeviceId> = if l + 1 < layers.len() {
            layers[l + 1].clone()
        } else {
            vec![mtu]
        };
        for &rtu in &layers[l] {
            let up = uppers[rng.random_range(0..uppers.len())];
            links.push(Link::new(rtu, up));
            // Optional cross link to a second parent: multiple paths.
            if uppers.len() > 1 && rng.random_bool(cfg.rtu_cross_links) {
                let other = uppers[rng.random_range(0..uppers.len())];
                if other != up {
                    links.push(Link::new(rtu, other));
                }
            }
        }
    }
    let mut topology = Topology::new(devices, links);

    // ---- Security profiles per hop. ----
    let strong_field = [
        CryptoProfile::new(CryptoAlgorithm::Chap, 64),
        CryptoProfile::new(CryptoAlgorithm::Sha2, 256),
    ];
    let strong_backhaul = [
        CryptoProfile::new(CryptoAlgorithm::Rsa, 2048),
        CryptoProfile::new(CryptoAlgorithm::Aes, 256),
    ];
    let weak_choices: [&[CryptoProfile]; 3] = [
        &[CryptoProfile {
            algorithm: CryptoAlgorithm::Hmac,
            key_bits: 128,
        }],
        &[CryptoProfile {
            algorithm: CryptoAlgorithm::Des,
            key_bits: 56,
        }],
        &[],
    ];
    let link_list: Vec<(DeviceId, DeviceId)> =
        topology.links().iter().map(|l| (l.a, l.b)).collect();
    for (a, b) in link_list {
        let field_hop = topology.device(a).kind() == DeviceKind::Ied
            || topology.device(b).kind() == DeviceKind::Ied;
        let profiles: Vec<CryptoProfile> = if rng.random_bool(cfg.secure_fraction) {
            if field_hop {
                strong_field.to_vec()
            } else {
                strong_backhaul.to_vec()
            }
        } else {
            weak_choices[rng.random_range(0..weak_choices.len())].to_vec()
        };
        if !profiles.is_empty() {
            topology.set_pair_security(a, b, profiles);
        }
    }

    let ied_measurements = ied_measurements
        .into_iter()
        .enumerate()
        .map(|(i, ms)| (DeviceId(i), ms))
        .collect();
    GeneratedScada {
        measurements,
        topology,
        ied_measurements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powergrid::ieee::ieee14;

    fn gen(cfg: &ScadaGenConfig) -> GeneratedScada {
        generate(ieee14(), cfg)
    }

    #[test]
    fn generated_topology_is_valid() {
        for hierarchy in 1..=4 {
            for seed in 0..3 {
                let cfg = ScadaGenConfig {
                    hierarchy_level: hierarchy,
                    seed,
                    ..Default::default()
                };
                let g = gen(&cfg);
                let errors = g.topology.validate();
                assert!(errors.is_empty(), "h={hierarchy} seed={seed}: {errors:?}");
            }
        }
    }

    #[test]
    fn every_measurement_is_recorded_exactly_once() {
        let g = gen(&ScadaGenConfig::default());
        let mut counts = vec![0usize; g.measurements.len()];
        for (_, ms) in &g.ied_measurements {
            for m in ms {
                counts[m.index()] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }

    #[test]
    fn ied_count_follows_paper_rule() {
        let g = gen(&ScadaGenConfig::default());
        let flows = g
            .measurements
            .kinds()
            .iter()
            .filter(|k| !matches!(k, MeasurementKind::Injection(_)))
            .count();
        let injections = g.measurements.len() - flows;
        let expected = flows.div_ceil(2) + injections;
        assert_eq!(g.topology.ieds().count(), expected);
    }

    #[test]
    fn hierarchy_controls_path_length() {
        use crate::paths::{forwarding_paths, PathLimits};
        let shallow = gen(&ScadaGenConfig {
            hierarchy_level: 1,
            rtu_cross_links: 0.0,
            seed: 3,
            ..Default::default()
        });
        let deep = gen(&ScadaGenConfig {
            hierarchy_level: 4,
            rtu_cross_links: 0.0,
            seed: 3,
            ..Default::default()
        });
        let avg = |g: &GeneratedScada| {
            let mut total = 0usize;
            let mut count = 0usize;
            for ied in g.topology.ieds() {
                for p in forwarding_paths(&g.topology, ied.id(), &PathLimits::default()) {
                    total += p.len();
                    count += 1;
                }
            }
            total as f64 / count as f64
        };
        // hierarchy 1 → IED,RTU,MTU = 3 devices; hierarchy 4 → 6 devices.
        assert!((avg(&shallow) - 3.0).abs() < 0.01);
        assert!((avg(&deep) - 6.0).abs() < 0.01);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = ScadaGenConfig::default();
        let a = gen(&cfg);
        let b = gen(&cfg);
        assert_eq!(a, b);
        let c = gen(&ScadaGenConfig {
            seed: 99,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn density_scales_measurement_count() {
        let lo = gen(&ScadaGenConfig {
            measurement_density: 0.4,
            ..Default::default()
        });
        let hi = gen(&ScadaGenConfig {
            measurement_density: 1.0,
            ..Default::default()
        });
        assert!(lo.measurements.len() < hi.measurements.len());
        let max = 2 * ieee14().num_branches() + ieee14().num_buses();
        assert_eq!(hi.measurements.len(), max);
    }

    #[test]
    fn secure_fraction_extremes() {
        use crate::policy::SecurityPolicy;
        let policy = SecurityPolicy::dsn16();
        let all = gen(&ScadaGenConfig {
            secure_fraction: 1.0,
            ..Default::default()
        });
        for l in all.topology.links() {
            assert!(
                policy.hop_secured(&all.topology.pair_security(l.a, l.b)),
                "hop {}-{} not secured at fraction 1.0",
                l.a,
                l.b
            );
        }
        let none = gen(&ScadaGenConfig {
            secure_fraction: 0.0,
            ..Default::default()
        });
        let secured = none
            .topology
            .links()
            .iter()
            .filter(|l| policy.hop_secured(&none.topology.pair_security(l.a, l.b)))
            .count();
        assert_eq!(secured, 0);
    }
}
