//! SCADA devices: IEDs, RTUs, MTUs, and routers.

use std::fmt;

use crate::crypto::CryptoProfile;
use crate::protocol::Protocol;

/// A device identifier: dense 0-based index into the topology's device
/// list. Display uses the paper's 1-based numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub usize);

impl DeviceId {
    /// Creates a device id from the paper's 1-based numbering.
    ///
    /// # Panics
    ///
    /// Panics if `one_based` is zero.
    pub fn from_one_based(one_based: usize) -> DeviceId {
        assert!(one_based >= 1, "device numbering is 1-based");
        DeviceId(one_based - 1)
    }

    /// The dense 0-based index.
    pub fn index(self) -> usize {
        self.0
    }

    /// The 1-based number used in the paper and the config format.
    pub fn one_based(self) -> usize {
        self.0 + 1
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0 + 1)
    }
}

/// The role of a device in the SCADA network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Intelligent electronic device: records measurements in the field.
    Ied,
    /// Remote terminal unit: aggregates and forwards field data.
    Rtu,
    /// Master terminal unit: the control-center server (one per system).
    Mtu,
    /// A network router; transparent for security pairing but still a
    /// physical node on forwarding paths.
    Router,
}

impl DeviceKind {
    /// Whether this kind counts as a *field device* for the paper's
    /// failure budgets (IEDs and RTUs do; the MTU and routers do not).
    pub fn is_field_device(self) -> bool {
        matches!(self, DeviceKind::Ied | DeviceKind::Rtu)
    }

    /// Whether this kind may appear in the *interior* of a forwarding
    /// path (data is relayed by RTUs and routers only).
    pub fn can_forward(self) -> bool {
        matches!(self, DeviceKind::Rtu | DeviceKind::Router)
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceKind::Ied => "IED",
            DeviceKind::Rtu => "RTU",
            DeviceKind::Mtu => "MTU",
            DeviceKind::Router => "router",
        };
        f.write_str(s)
    }
}

/// A SCADA device with its communication and security configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    id: DeviceId,
    kind: DeviceKind,
    /// ICS protocols this device speaks.
    protocols: Vec<Protocol>,
    /// Crypto suites this device supports (used when no explicit
    /// pair-profile is configured for a hop).
    crypto_suites: Vec<CryptoProfile>,
    /// Whether this device refuses plaintext communication.
    requires_crypto: bool,
    /// Management IP address (the paper's `IpAddr_i`); purely
    /// informational for reachability, which is modeled point-to-point.
    ip: Option<std::net::Ipv4Addr>,
    /// Whether the device has been retired by a model patch. Ids are
    /// dense positional indices, so devices are never deleted: a retired
    /// device keeps its slot but carries no forwarding paths and is
    /// pinned available by the encoder (its failure can never matter).
    retired: bool,
}

impl Device {
    /// Creates a device speaking every protocol with no crypto suites.
    pub fn new(id: DeviceId, kind: DeviceKind) -> Device {
        Device {
            id,
            kind,
            protocols: vec![Protocol::Any],
            crypto_suites: Vec::new(),
            requires_crypto: false,
            ip: None,
            retired: false,
        }
    }

    /// Replaces the protocol list.
    pub fn with_protocols(mut self, protocols: Vec<Protocol>) -> Device {
        self.protocols = protocols;
        self
    }

    /// Replaces the supported crypto suites.
    pub fn with_crypto_suites(mut self, suites: Vec<CryptoProfile>) -> Device {
        self.crypto_suites = suites;
        self
    }

    /// Marks the device as refusing plaintext communication.
    pub fn requiring_crypto(mut self) -> Device {
        self.requires_crypto = true;
        self
    }

    /// Sets the management IP address.
    pub fn with_ip(mut self, ip: std::net::Ipv4Addr) -> Device {
        self.ip = Some(ip);
        self
    }

    /// The management IP address, if configured.
    pub fn ip(&self) -> Option<std::net::Ipv4Addr> {
        self.ip
    }

    /// The device id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device kind.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Protocols this device speaks.
    pub fn protocols(&self) -> &[Protocol] {
        &self.protocols
    }

    /// Crypto suites this device supports.
    pub fn crypto_suites(&self) -> &[CryptoProfile] {
        &self.crypto_suites
    }

    /// Whether the device refuses plaintext.
    pub fn requires_crypto(&self) -> bool {
        self.requires_crypto
    }

    /// Whether the device has been retired by a model patch.
    pub fn retired(&self) -> bool {
        self.retired
    }

    /// Retires the device: it keeps its id slot but stops participating
    /// in forwarding paths (see [`crate::paths::forwarding_paths`]).
    pub fn retire(&mut self) {
        self.retired = true;
    }

    /// Whether the two devices share a communication protocol (the
    /// paper's `CommProtoPairing`).
    pub fn protocol_pairing(&self, other: &Device) -> bool {
        self.protocols
            .iter()
            .any(|p| other.protocols.iter().any(|q| p.compatible_with(*q)))
    }

    /// Whether the two devices can complete a crypto handshake (the
    /// paper's `CryptoPropPairing`): either neither requires crypto, or
    /// they share a suite.
    pub fn crypto_pairing(&self, other: &Device) -> bool {
        let shared = self
            .crypto_suites
            .iter()
            .any(|s| other.crypto_suites.contains(s));
        if self.requires_crypto || other.requires_crypto {
            shared
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::CryptoAlgorithm;

    #[test]
    fn kind_predicates() {
        assert!(DeviceKind::Ied.is_field_device());
        assert!(DeviceKind::Rtu.is_field_device());
        assert!(!DeviceKind::Mtu.is_field_device());
        assert!(!DeviceKind::Router.is_field_device());
        assert!(DeviceKind::Rtu.can_forward());
        assert!(DeviceKind::Router.can_forward());
        assert!(!DeviceKind::Ied.can_forward());
        assert!(!DeviceKind::Mtu.can_forward());
    }

    #[test]
    fn protocol_pairing() {
        let a = Device::new(DeviceId(0), DeviceKind::Ied).with_protocols(vec![Protocol::Modbus]);
        let b = Device::new(DeviceId(1), DeviceKind::Rtu).with_protocols(vec![Protocol::Dnp3]);
        let c = Device::new(DeviceId(2), DeviceKind::Rtu)
            .with_protocols(vec![Protocol::Dnp3, Protocol::Modbus]);
        let any = Device::new(DeviceId(3), DeviceKind::Mtu);
        assert!(!a.protocol_pairing(&b));
        assert!(a.protocol_pairing(&c));
        assert!(b.protocol_pairing(&c));
        assert!(a.protocol_pairing(&any));
    }

    #[test]
    fn crypto_pairing_rules() {
        let suite = CryptoProfile::new(CryptoAlgorithm::Aes, 256);
        let open = Device::new(DeviceId(0), DeviceKind::Ied);
        let secured = Device::new(DeviceId(1), DeviceKind::Rtu)
            .with_crypto_suites(vec![suite])
            .requiring_crypto();
        let compatible = Device::new(DeviceId(2), DeviceKind::Rtu).with_crypto_suites(vec![suite]);
        // Plaintext with a crypto-requiring peer fails.
        assert!(!open.crypto_pairing(&secured));
        assert!(secured.crypto_pairing(&compatible));
        // Two open devices always pair.
        let open2 = Device::new(DeviceId(3), DeviceKind::Ied);
        assert!(open.crypto_pairing(&open2));
    }

    #[test]
    fn one_based_round_trip() {
        let d = DeviceId::from_one_based(13);
        assert_eq!(d.index(), 12);
        assert_eq!(d.one_based(), 13);
        assert_eq!(d.to_string(), "dev13");
    }
}
