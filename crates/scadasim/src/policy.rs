//! Organizational security policy.
//!
//! The paper's `Authenticated` and `IntegrityProtected` constraints are
//! disjunctions over acceptable (algorithm, minimum-key-length) pairs —
//! e.g. `CAlgo = hmac ∧ CKey ≥ 128 → Authenticated`. This module makes
//! that rule table an explicit, data-driven value so operators can encode
//! their own requirements; [`SecurityPolicy::dsn16`] reproduces the
//! paper's choices (which the Scenario-2 narrative pins down: HMAC-128
//! authenticates but does not integrity-protect; CHAP only
//! authenticates; SHA-2 digests provide integrity; DES provides nothing).

use crate::crypto::{CryptoAlgorithm, CryptoProfile};

/// One acceptance rule: the algorithm with at least this key length
/// provides the guarded property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Accepted algorithm.
    pub algorithm: CryptoAlgorithm,
    /// Minimum key (or digest) length in bits.
    pub min_key_bits: u32,
}

impl Rule {
    /// Creates a rule.
    pub fn new(algorithm: CryptoAlgorithm, min_key_bits: u32) -> Rule {
        Rule {
            algorithm,
            min_key_bits,
        }
    }

    /// Whether a profile satisfies this rule.
    pub fn accepts(&self, profile: CryptoProfile) -> bool {
        profile.algorithm == self.algorithm && profile.key_bits >= self.min_key_bits
    }
}

/// The set of profiles an organization accepts for authentication and
/// for data-integrity protection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityPolicy {
    authentication: Vec<Rule>,
    integrity: Vec<Rule>,
}

impl SecurityPolicy {
    /// An empty policy accepting nothing.
    pub fn empty() -> SecurityPolicy {
        SecurityPolicy {
            authentication: Vec::new(),
            integrity: Vec::new(),
        }
    }

    /// The DSN'16 paper's policy.
    ///
    /// Authentication: HMAC ≥ 128, CHAP ≥ 64, RSA ≥ 2048.
    /// Integrity: SHA-2 ≥ 128, AES ≥ 256 (authenticated encryption),
    /// HMAC ≥ 256.
    ///
    /// Broken primitives (DES, MD5, SHA-1) appear in neither list; a
    /// profile on them pairs successfully but provides nothing — the
    /// paper's DES example.
    pub fn dsn16() -> SecurityPolicy {
        SecurityPolicy {
            authentication: vec![
                Rule::new(CryptoAlgorithm::Hmac, 128),
                Rule::new(CryptoAlgorithm::Chap, 64),
                Rule::new(CryptoAlgorithm::Rsa, 2048),
            ],
            integrity: vec![
                Rule::new(CryptoAlgorithm::Sha2, 128),
                Rule::new(CryptoAlgorithm::Aes, 256),
                Rule::new(CryptoAlgorithm::Hmac, 256),
            ],
        }
    }

    /// Adds an authentication rule (builder style).
    pub fn accept_authentication(mut self, rule: Rule) -> SecurityPolicy {
        self.authentication.push(rule);
        self
    }

    /// Adds an integrity rule (builder style).
    pub fn accept_integrity(mut self, rule: Rule) -> SecurityPolicy {
        self.integrity.push(rule);
        self
    }

    /// The authentication rules.
    pub fn authentication_rules(&self) -> &[Rule] {
        &self.authentication
    }

    /// The integrity rules.
    pub fn integrity_rules(&self) -> &[Rule] {
        &self.integrity
    }

    /// Whether a single profile provides authentication.
    pub fn authenticates(&self, profile: CryptoProfile) -> bool {
        self.authentication.iter().any(|r| r.accepts(profile))
    }

    /// Whether a single profile provides integrity protection.
    pub fn protects_integrity(&self, profile: CryptoProfile) -> bool {
        self.integrity.iter().any(|r| r.accepts(profile))
    }

    /// The paper's `Authenticated_{i,j}`: some profile of the hop
    /// authenticates.
    pub fn hop_authenticated(&self, profiles: &[CryptoProfile]) -> bool {
        profiles.iter().any(|&p| self.authenticates(p))
    }

    /// The paper's `IntegrityProtected_{i,j}`.
    pub fn hop_integrity_protected(&self, profiles: &[CryptoProfile]) -> bool {
        profiles.iter().any(|&p| self.protects_integrity(p))
    }

    /// Whether a hop is *secured*: authenticated and integrity-protected.
    pub fn hop_secured(&self, profiles: &[CryptoProfile]) -> bool {
        self.hop_authenticated(profiles) && self.hop_integrity_protected(profiles)
    }
}

impl Default for SecurityPolicy {
    fn default() -> SecurityPolicy {
        SecurityPolicy::dsn16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(algo: CryptoAlgorithm, bits: u32) -> CryptoProfile {
        CryptoProfile::new(algo, bits)
    }

    #[test]
    fn table_ii_profiles_classify_as_in_scenario_2() {
        let policy = SecurityPolicy::dsn16();
        // "1 9 hmac 128": authenticated, NOT integrity protected — the
        // paper says IED 1's data is not integrity protected.
        let hop_1_9 = [p(CryptoAlgorithm::Hmac, 128)];
        assert!(policy.hop_authenticated(&hop_1_9));
        assert!(!policy.hop_integrity_protected(&hop_1_9));
        assert!(!policy.hop_secured(&hop_1_9));
        // "2 9 chap 64 sha2 128": CHAP authenticates, SHA-2 integrity.
        let hop_2_9 = [p(CryptoAlgorithm::Chap, 64), p(CryptoAlgorithm::Sha2, 128)];
        assert!(policy.hop_secured(&hop_2_9));
        // "9 13 rsa 2048 aes 256": RSA auth, AES-256 integrity.
        let hop_9_13 = [p(CryptoAlgorithm::Rsa, 2048), p(CryptoAlgorithm::Aes, 256)];
        assert!(policy.hop_secured(&hop_9_13));
        // CHAP alone: authentication only (the paper's CHAP example).
        let chap_only = [p(CryptoAlgorithm::Chap, 64)];
        assert!(policy.hop_authenticated(&chap_only));
        assert!(!policy.hop_secured(&chap_only));
        // DES pairs but provides nothing (the paper's DES example).
        let des = [p(CryptoAlgorithm::Des, 56)];
        assert!(!policy.hop_authenticated(&des));
        assert!(!policy.hop_integrity_protected(&des));
    }

    #[test]
    fn key_length_thresholds() {
        let policy = SecurityPolicy::dsn16();
        assert!(policy.authenticates(p(CryptoAlgorithm::Hmac, 128)));
        assert!(!policy.authenticates(p(CryptoAlgorithm::Hmac, 64)));
        assert!(policy.authenticates(p(CryptoAlgorithm::Rsa, 4096)));
        assert!(!policy.authenticates(p(CryptoAlgorithm::Rsa, 1024)));
        assert!(policy.protects_integrity(p(CryptoAlgorithm::Sha2, 256)));
        assert!(!policy.protects_integrity(p(CryptoAlgorithm::Sha2, 64)));
        // HMAC with a long key also protects integrity.
        assert!(policy.protects_integrity(p(CryptoAlgorithm::Hmac, 256)));
    }

    #[test]
    fn empty_policy_accepts_nothing() {
        let policy = SecurityPolicy::empty();
        assert!(!policy.hop_authenticated(&[p(CryptoAlgorithm::Rsa, 4096)]));
        assert!(!policy.hop_secured(&[p(CryptoAlgorithm::Aes, 256)]));
    }

    #[test]
    fn builder_extends_rules() {
        let policy = SecurityPolicy::empty()
            .accept_authentication(Rule::new(CryptoAlgorithm::Des, 56))
            .accept_integrity(Rule::new(CryptoAlgorithm::Md5, 128));
        // A deliberately bad policy is representable — policy is data.
        assert!(policy.authenticates(p(CryptoAlgorithm::Des, 56)));
        assert!(policy.protects_integrity(p(CryptoAlgorithm::Md5, 128)));
    }
}
