//! # scadasim — SCADA network configuration modeling
//!
//! The communication side of the SCADA resiliency analyzer (DSN'16
//! reproduction): devices (IEDs, RTUs, MTU, routers) with protocol and
//! crypto configuration, point-to-point links, per-host-pair security
//! profiles, forwarding-path enumeration, the organizational security
//! policy that classifies profiles as authenticating / integrity
//! protecting, a Table-II-style textual config format, and a synthetic
//! SCADA generator reproducing the paper's evaluation methodology.
//!
//! # Examples
//!
//! Build the smallest SCADA system and enumerate its delivery paths:
//!
//! ```
//! use scadasim::{Device, DeviceId, DeviceKind, Link, Topology};
//! use scadasim::paths::{forwarding_paths, PathLimits};
//!
//! let topo = Topology::new(
//!     vec![
//!         Device::new(DeviceId(0), DeviceKind::Ied),
//!         Device::new(DeviceId(1), DeviceKind::Rtu),
//!         Device::new(DeviceId(2), DeviceKind::Mtu),
//!     ],
//!     vec![
//!         Link::new(DeviceId(0), DeviceId(1)),
//!         Link::new(DeviceId(1), DeviceId(2)),
//!     ],
//! );
//! let paths = forwarding_paths(&topo, DeviceId(0), &PathLimits::default());
//! assert_eq!(paths.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod crypto;
mod device;
pub mod generator;
pub mod paths;
mod policy;
mod protocol;
mod topology;

pub use config::{parse_config, write_config, ParseConfigError, ScadaConfig};
pub use crypto::{CryptoAlgorithm, CryptoProfile, ParseAlgorithmError};
pub use device::{Device, DeviceId, DeviceKind};
pub use generator::{generate, GeneratedScada, ScadaGenConfig};
pub use policy::{Rule, SecurityPolicy};
pub use protocol::{ParseProtocolError, Protocol};
pub use topology::{Link, LinkMedium, Topology, TopologyError};
