//! Cryptographic profiles.
//!
//! A profile is an algorithm plus a key length, matching the paper's
//! `CryptType` terms (`CAlgo_K`, `CKey_K`). What a profile *provides*
//! (authentication, integrity) is decided by the
//! [`crate::policy::SecurityPolicy`], not here — the paper's point is
//! precisely that a handshake can succeed on a profile that fails the
//! organization's security requirements (e.g. CHAP authenticates but
//! does not integrity-protect; DES pairs fine but is broken).

use std::fmt;
use std::str::FromStr;

/// A cryptographic algorithm appearing in SCADA security profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CryptoAlgorithm {
    /// Keyed-hash message authentication code.
    Hmac,
    /// Challenge-Handshake Authentication Protocol.
    Chap,
    /// SHA-1 digest (obsolete).
    Sha1,
    /// SHA-2 family digest (the paper's `sha2`/`sha256`).
    Sha2,
    /// MD5 digest (broken).
    Md5,
    /// AES block cipher.
    Aes,
    /// DES block cipher (broken).
    Des,
    /// Triple DES.
    TripleDes,
    /// RSA public-key cryptosystem.
    Rsa,
}

impl CryptoAlgorithm {
    /// All algorithms, for iteration in generators/tests.
    pub const ALL: [CryptoAlgorithm; 9] = [
        CryptoAlgorithm::Hmac,
        CryptoAlgorithm::Chap,
        CryptoAlgorithm::Sha1,
        CryptoAlgorithm::Sha2,
        CryptoAlgorithm::Md5,
        CryptoAlgorithm::Aes,
        CryptoAlgorithm::Des,
        CryptoAlgorithm::TripleDes,
        CryptoAlgorithm::Rsa,
    ];

    /// The lowercase name used by the config format (e.g. `"sha2"`).
    pub fn name(self) -> &'static str {
        match self {
            CryptoAlgorithm::Hmac => "hmac",
            CryptoAlgorithm::Chap => "chap",
            CryptoAlgorithm::Sha1 => "sha1",
            CryptoAlgorithm::Sha2 => "sha2",
            CryptoAlgorithm::Md5 => "md5",
            CryptoAlgorithm::Aes => "aes",
            CryptoAlgorithm::Des => "des",
            CryptoAlgorithm::TripleDes => "3des",
            CryptoAlgorithm::Rsa => "rsa",
        }
    }
}

impl fmt::Display for CryptoAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a crypto algorithm name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlgorithmError(String);

impl fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown crypto algorithm `{}`", self.0)
    }
}

impl std::error::Error for ParseAlgorithmError {}

impl FromStr for CryptoAlgorithm {
    type Err = ParseAlgorithmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "hmac" => Ok(CryptoAlgorithm::Hmac),
            "chap" => Ok(CryptoAlgorithm::Chap),
            "sha1" => Ok(CryptoAlgorithm::Sha1),
            "sha2" | "sha256" | "sha-256" => Ok(CryptoAlgorithm::Sha2),
            "md5" => Ok(CryptoAlgorithm::Md5),
            "aes" => Ok(CryptoAlgorithm::Aes),
            "des" => Ok(CryptoAlgorithm::Des),
            "3des" | "tripledes" | "triple-des" => Ok(CryptoAlgorithm::TripleDes),
            "rsa" => Ok(CryptoAlgorithm::Rsa),
            other => Err(ParseAlgorithmError(other.to_string())),
        }
    }
}

/// An algorithm with a key length in bits — one `CryptType` of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CryptoProfile {
    /// The algorithm.
    pub algorithm: CryptoAlgorithm,
    /// Key (or digest) length in bits.
    pub key_bits: u32,
}

impl CryptoProfile {
    /// Creates a profile.
    pub fn new(algorithm: CryptoAlgorithm, key_bits: u32) -> CryptoProfile {
        CryptoProfile {
            algorithm,
            key_bits,
        }
    }
}

impl fmt::Display for CryptoProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.algorithm, self.key_bits)
    }
}

impl FromStr for CryptoProfile {
    type Err = ParseAlgorithmError;

    /// Parses `"<algo> <bits>"` as used by the config format.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split_whitespace();
        let algo: CryptoAlgorithm = parts
            .next()
            .ok_or_else(|| ParseAlgorithmError(s.to_string()))?
            .parse()?;
        let bits: u32 = parts
            .next()
            .and_then(|b| b.parse().ok())
            .ok_or_else(|| ParseAlgorithmError(s.to_string()))?;
        Ok(CryptoProfile::new(algo, bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert_eq!("hmac".parse(), Ok(CryptoAlgorithm::Hmac));
        assert_eq!("SHA256".parse(), Ok(CryptoAlgorithm::Sha2));
        assert_eq!("3des".parse(), Ok(CryptoAlgorithm::TripleDes));
        assert!("blowfish".parse::<CryptoAlgorithm>().is_err());
    }

    #[test]
    fn parse_profile() {
        let p: CryptoProfile = "rsa 2048".parse().unwrap();
        assert_eq!(p, CryptoProfile::new(CryptoAlgorithm::Rsa, 2048));
        assert!("rsa".parse::<CryptoProfile>().is_err());
        assert!("rsa many".parse::<CryptoProfile>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for algo in CryptoAlgorithm::ALL {
            let p = CryptoProfile::new(algo, 128);
            let parsed: CryptoProfile = p.to_string().parse().unwrap();
            assert_eq!(parsed, p);
        }
    }
}
