//! ICS communication protocols.

use std::fmt;
use std::str::FromStr;

/// An industrial control system protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Modbus (serial or TCP).
    Modbus,
    /// DNP3 (IEEE 1815).
    Dnp3,
    /// IEC 61850 (substation automation).
    Iec61850,
    /// IEC 60870-5-104.
    Iec104,
    /// Wildcard: compatible with everything (devices whose protocol is
    /// not modeled).
    Any,
}

impl Protocol {
    /// Whether two protocol declarations allow communication
    /// (the paper's same-protocol requirement, with `Any` as wildcard).
    pub fn compatible_with(self, other: Protocol) -> bool {
        self == Protocol::Any || other == Protocol::Any || self == other
    }

    /// The lowercase config-format name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Modbus => "modbus",
            Protocol::Dnp3 => "dnp3",
            Protocol::Iec61850 => "iec61850",
            Protocol::Iec104 => "iec104",
            Protocol::Any => "any",
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a protocol name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProtocolError(String);

impl fmt::Display for ParseProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown protocol `{}`", self.0)
    }
}

impl std::error::Error for ParseProtocolError {}

impl FromStr for Protocol {
    type Err = ParseProtocolError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "modbus" => Ok(Protocol::Modbus),
            "dnp3" => Ok(Protocol::Dnp3),
            "iec61850" | "61850" => Ok(Protocol::Iec61850),
            "iec104" | "104" => Ok(Protocol::Iec104),
            "any" | "*" => Ok(Protocol::Any),
            other => Err(ParseProtocolError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility() {
        assert!(Protocol::Dnp3.compatible_with(Protocol::Dnp3));
        assert!(!Protocol::Dnp3.compatible_with(Protocol::Modbus));
        assert!(Protocol::Any.compatible_with(Protocol::Modbus));
        assert!(Protocol::Iec61850.compatible_with(Protocol::Any));
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("dnp3".parse(), Ok(Protocol::Dnp3));
        assert_eq!("61850".parse(), Ok(Protocol::Iec61850));
        assert_eq!("*".parse(), Ok(Protocol::Any));
        assert!("profibus".parse::<Protocol>().is_err());
        assert_eq!(Protocol::Iec104.to_string(), "iec104");
    }
}
