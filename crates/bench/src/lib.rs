//! # scada-bench — evaluation harness
//!
//! Shared machinery for regenerating every table and figure of the
//! DSN'16 evaluation: deterministic workload construction (IEEE-sized
//! grids + synthetic SCADA), timed verification runs, small statistics,
//! and CSV output. The `experiments` binary drives full sweeps;
//! `benches/` holds the criterion targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;

use std::time::{Duration, Instant};

use powergrid::ieee::ieee14;
use powergrid::synthetic::ieee_sized;
use scada_analyzer::parallel::par_map_observed;
use scada_analyzer::{
    AnalysisInput, Analyzer, Certificate, CertifyOptions, Obs, Property, QueryLimits,
    ResiliencySpec, Verdict,
};
use scadasim::{generate, ScadaGenConfig};

/// Workload parameters for one generated SCADA system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// IEEE bus-system size (14 uses the real system, 30/57/118 the
    /// IEEE-sized synthetic generator).
    pub buses: usize,
    /// Measurement density (fraction of `2L + B`).
    pub density: f64,
    /// RTU hierarchy level.
    pub hierarchy: usize,
    /// Fraction of hops with secured profiles.
    pub secure_fraction: f64,
    /// RNG seed (grid + SCADA).
    pub seed: u64,
}

impl Default for Workload {
    fn default() -> Workload {
        Workload {
            buses: 14,
            density: 0.7,
            hierarchy: 1,
            secure_fraction: 0.8,
            seed: 0,
        }
    }
}

impl Workload {
    /// Builds the analysis input for this workload.
    pub fn build(&self) -> AnalysisInput {
        let system = if self.buses == 14 {
            ieee14()
        } else {
            ieee_sized(self.buses, self.seed)
        };
        let scada = generate(
            system,
            &ScadaGenConfig {
                measurement_density: self.density,
                hierarchy_level: self.hierarchy,
                secure_fraction: self.secure_fraction,
                seed: self.seed,
                ..Default::default()
            },
        );
        AnalysisInput::new(scada.measurements, scada.topology, scada.ied_measurements)
    }
}

/// The coarse verdict of one measured query: what lands in the result
/// tables and CSV cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// `unsat` — verified resilient.
    Resilient,
    /// `sat` — a threat vector exists.
    Threat,
    /// A resource limit stopped the query before a verdict. Rendered as
    /// an `unknown` cell; never counted as resilient.
    Unknown,
}

impl Outcome {
    /// Whether the query was verified resilient (`Unknown` is not).
    pub fn is_resilient(self) -> bool {
        matches!(self, Outcome::Resilient)
    }

    /// Whether the query ran out of resources before a verdict.
    pub fn is_unknown(self) -> bool {
        matches!(self, Outcome::Unknown)
    }

    /// The CSV/table cell for this outcome.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Resilient => "resilient",
            Outcome::Threat => "threat",
            Outcome::Unknown => "unknown",
        }
    }
}

impl From<&Verdict> for Outcome {
    fn from(verdict: &Verdict) -> Outcome {
        match verdict {
            Verdict::Resilient => Outcome::Resilient,
            Verdict::Threat(_) => Outcome::Threat,
            Verdict::Unknown { .. } => Outcome::Unknown,
        }
    }
}

/// One timed verification outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measured {
    /// The verdict (resilient / threat / unknown).
    pub outcome: Outcome,
    /// Wall-clock time including encoding and solving.
    pub duration: Duration,
    /// Solver variables after the query.
    pub variables: usize,
    /// Clauses after the query.
    pub clauses: usize,
    /// Solver conflicts spent (all attempts).
    pub conflicts: u64,
    /// Solve attempts performed (> 1 when an exhausted conflict budget
    /// was retried with escalation).
    pub attempts: u32,
    /// Time the independent checker spent certifying the verdict (zero
    /// when certification was off or the verdict stayed unknown).
    pub cert: Duration,
}

/// Runs one verification from scratch (model construction + solve), the
/// paper's notion of "execution time of the model".
pub fn measure(input: &AnalysisInput, property: Property, spec: ResiliencySpec) -> Measured {
    measure_limited(input, property, spec, &QueryLimits::none())
}

/// [`measure`] under resource limits: a query stopped by its deadline or
/// conflict budget measures as [`Outcome::Unknown`] instead of running
/// unbounded.
pub fn measure_limited(
    input: &AnalysisInput,
    property: Property,
    spec: ResiliencySpec,
    limits: &QueryLimits,
) -> Measured {
    measure_observed(input, property, spec, limits, &Obs::none())
}

/// [`measure_limited`] with observability: the query's trace events and
/// metrics flow through `obs`.
pub fn measure_observed(
    input: &AnalysisInput,
    property: Property,
    spec: ResiliencySpec,
    limits: &QueryLimits,
    obs: &Obs,
) -> Measured {
    measure_certified(
        input,
        property,
        spec,
        limits,
        obs,
        &CertifyOptions::default(),
    )
}

/// [`measure_observed`] with verdict certification: when `certify` is
/// enabled the verdict is re-checked by the independent proof/model
/// checker, the check lands in `certify.log`, and [`Measured::cert`]
/// carries the time the checker spent.
pub fn measure_certified(
    input: &AnalysisInput,
    property: Property,
    spec: ResiliencySpec,
    limits: &QueryLimits,
    obs: &Obs,
    certify: &CertifyOptions,
) -> Measured {
    let start = Instant::now();
    let mut analyzer = Analyzer::with_options(input, obs.clone(), certify.clone());
    let report = analyzer.verify_with_report_limited(property, spec, limits);
    let cert = match report.certificate {
        Some(Certificate::Threat { elapsed, .. }) | Some(Certificate::Proof { elapsed, .. }) => {
            elapsed
        }
        _ => Duration::ZERO,
    };
    Measured {
        outcome: Outcome::from(&report.verdict),
        duration: start.elapsed(),
        variables: report.encoding.variables,
        clauses: report.encoding.clauses,
        conflicts: report.conflicts,
        attempts: report.attempts,
        cert,
    }
}

/// One entry of an experiment fleet: a workload plus the query to run
/// on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetQuery {
    /// The workload to construct.
    pub workload: Workload,
    /// The property to verify on it.
    pub property: Property,
    /// The specification to verify against.
    pub spec: ResiliencySpec,
}

/// Runs a whole fleet of workload queries, fanning construction and
/// verification across `jobs` workers (`0` = all available cores,
/// `1` = the serial baseline).
///
/// Every fleet entry builds its own input and analyzer, so results are
/// in input order and identical to calling [`measure`] serially —
/// parallelism only changes the wall-clock.
pub fn measure_fleet(fleet: &[FleetQuery], jobs: usize) -> Vec<Measured> {
    measure_fleet_limited(fleet, jobs, &QueryLimits::none())
}

/// [`measure_fleet`] under resource limits: each fleet entry gets its
/// own copy of `limits` (a per-entry wall-clock allowance when built
/// with [`QueryLimits::with_timeout`]); entries stopped by a limit come
/// back [`Outcome::Unknown`] and the rest of the fleet is unaffected.
pub fn measure_fleet_limited(
    fleet: &[FleetQuery],
    jobs: usize,
    limits: &QueryLimits,
) -> Vec<Measured> {
    measure_fleet_observed(fleet, jobs, limits, &Obs::none())
}

/// [`measure_fleet_limited`] with observability: per-worker fleet events
/// plus the query-lifecycle events of every measured query through
/// `obs`.
pub fn measure_fleet_observed(
    fleet: &[FleetQuery],
    jobs: usize,
    limits: &QueryLimits,
    obs: &Obs,
) -> Vec<Measured> {
    measure_fleet_certified(fleet, jobs, limits, obs, &CertifyOptions::default())
}

/// [`measure_fleet_observed`] with verdict certification: every worker
/// certifies its own queries, and all checks tally into the one log
/// shared through `certify`.
pub fn measure_fleet_certified(
    fleet: &[FleetQuery],
    jobs: usize,
    limits: &QueryLimits,
    obs: &Obs,
    certify: &CertifyOptions,
) -> Vec<Measured> {
    par_map_observed(fleet, jobs, obs, |_, query, _| {
        let input = query.workload.build();
        measure_certified(&input, query.property, query.spec, limits, obs, certify)
    })
}

/// Mean of a set of durations (zero if empty).
pub fn mean(durations: &[Duration]) -> Duration {
    if durations.is_empty() {
        return Duration::ZERO;
    }
    durations.iter().sum::<Duration>() / durations.len() as u32
}

/// Finds, for one workload, a `(k_unsat, k_sat)` pair bracketing the
/// resiliency boundary for a property: the largest `k` still resilient
/// and the smallest `k` with a threat. Returns `None` when even `k = 0`
/// has a threat (no unsat side exists).
pub fn resiliency_boundary(
    input: &AnalysisInput,
    property: Property,
    max_k: usize,
) -> Option<(usize, usize)> {
    let mut analyzer = Analyzer::new(input);
    let mut last_resilient: Option<usize> = None;
    for k in 0..=max_k {
        if analyzer
            .verify(property, ResiliencySpec::total(k))
            .is_resilient()
        {
            last_resilient = Some(k);
        } else {
            return last_resilient.map(|u| (u, k));
        }
    }
    // Resilient all the way to max_k: treat (max_k, max_k + 1) as the
    // boundary so callers still get an unsat sample.
    last_resilient.map(|u| (u, u + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_for_every_size() {
        for buses in [14, 30, 57] {
            let input = Workload {
                buses,
                ..Default::default()
            }
            .build();
            assert!(input.topology.ieds().count() > 0);
            assert!(input.topology.validate().is_empty());
        }
    }

    #[test]
    fn measure_produces_sensible_numbers() {
        let input = Workload::default().build();
        let m = measure(&input, Property::Observability, ResiliencySpec::total(0));
        assert!(m.variables > 0);
        assert!(m.clauses > 0);
        assert!(m.duration > Duration::ZERO);
    }

    #[test]
    fn boundary_is_consistent() {
        let input = Workload::default().build();
        if let Some((unsat_k, sat_k)) = resiliency_boundary(&input, Property::Observability, 6) {
            assert!(unsat_k < sat_k);
            let mut analyzer = Analyzer::new(&input);
            assert!(analyzer
                .verify(Property::Observability, ResiliencySpec::total(unsat_k))
                .is_resilient());
        }
    }

    #[test]
    fn fleet_matches_serial_measurement() {
        let fleet: Vec<FleetQuery> = (0..3)
            .map(|k| FleetQuery {
                workload: Workload::default(),
                property: Property::Observability,
                spec: ResiliencySpec::total(k),
            })
            .collect();
        let serial = measure_fleet(&fleet, 1);
        let parallel = measure_fleet(&fleet, 2);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.outcome, p.outcome);
            assert_eq!(s.variables, p.variables);
            assert_eq!(s.clauses, p.clauses);
        }
    }

    #[test]
    fn bounded_measurement_degrades_to_unknown() {
        use scada_analyzer::RetryPolicy;
        let input = Workload::default().build();
        // A 1-conflict budget with no retry leaves a nontrivial query
        // undecided — and must not panic or hang.
        let tiny = QueryLimits::none().with_conflict_budget(1);
        let m = measure_limited(
            &input,
            Property::Observability,
            ResiliencySpec::total(3),
            &tiny,
        );
        if m.outcome.is_unknown() {
            // Escalating retry from the same tiny base budget reaches a
            // definite verdict.
            let escalated = QueryLimits::none()
                .with_conflict_budget(1)
                .with_retry(RetryPolicy::escalating(32));
            let m2 = measure_limited(
                &input,
                Property::Observability,
                ResiliencySpec::total(3),
                &escalated,
            );
            assert!(!m2.outcome.is_unknown(), "×2 escalation must decide");
        }
    }

    #[test]
    fn certified_measurement_populates_the_shared_log() {
        let input = Workload::default().build();
        let certify = CertifyOptions::enabled();
        let m = measure_certified(
            &input,
            Property::Observability,
            ResiliencySpec::total(1),
            &QueryLimits::none(),
            &Obs::none(),
            &certify,
        );
        assert!(!m.outcome.is_unknown());
        assert!(m.cert > Duration::ZERO, "certified runs report check time");
        assert_eq!(certify.log.checks(), 1);
        assert_eq!(
            certify.log.failures(),
            0,
            "{:?}",
            certify.log.first_failure()
        );
        // Uncertified measurement reports no check time.
        let plain = measure(&input, Property::Observability, ResiliencySpec::total(1));
        assert_eq!(plain.cert, Duration::ZERO);
        assert_eq!(plain.outcome, m.outcome);
    }

    #[test]
    fn mean_of_durations() {
        assert_eq!(mean(&[]), Duration::ZERO);
        let ds = [Duration::from_millis(2), Duration::from_millis(4)];
        assert_eq!(mean(&ds), Duration::from_millis(3));
    }
}
