//! CI perf gate over the service benchmarks.
//!
//! ```text
//! bench_gate <records.jsonl> <report.json> [--gate delta|service|recovery|fleet] [--max-ratio N]
//! ```
//!
//! Reads the machine-readable records the criterion shim (and the
//! `service_load` load generator) append under `BENCH_GATE_JSON` (one
//! JSON object per benchmark: `label`, `mean_ns`, `min_ns`, `max_ns`,
//! `samples`, optionally `p50_ns`/`p99_ns`/`throughput_rps`), computes
//! the gated ratio, writes a JSON report, and fails the process when
//! the ratio exceeds the bound.
//!
//! Two gates:
//!
//! * `--gate delta` (the default) isolates the delta-verify cost by
//!   subtraction: the `delta/patch` series times the patch op alone
//!   (validate, delta-encode, re-key) and `delta/patch_verify` times
//!   patch + re-verify, so their difference is the verify latency a
//!   client observes on a just-patched model. The gate asserts
//!   `(patch_verify - patch) / verify_warm <= max-ratio` (default 4): a
//!   delta re-verify must stay in the warm regime, nowhere near the
//!   cold-rebuild cost.
//! * `--gate service` bounds the sharded front-end's tail latency
//!   against the single-shard baseline under identical closed-loop
//!   traffic: `p99(service_load/gate_sharded) <=
//!   max-ratio * p99(service_load/gate_single)` (default 2). Sharding
//!   buys throughput by splitting locks; this gate refuses the trade if
//!   it costs the hot path its tail.
//! * `--gate recovery` bounds journal-replay startup cost:
//!   `mean(recovery/replay) <= max-ratio * mean(recovery/cold_build)`
//!   (default 10). Recovery re-runs the session's load and patch
//!   lineage, so it can never be cheaper than one cold build — but the
//!   journal scan and replay orchestration on top must stay a small
//!   factor, or crash recovery becomes an availability incident of its
//!   own.
//! * `--gate fleet` bounds the portfolio audit cost:
//!   `mean(fleet/delta_dedup) <= max-ratio * mean(fleet/cold_per_config)`
//!   (default 0.5). The fleet planner's whole point is amortizing cold
//!   builds across near-duplicate configs via patch chains and the
//!   verdict cache; if the deduplicated audit is not at least 2× cheaper
//!   than cold-per-config on the example fleet, the planner has stopped
//!   earning its keep.
//!
//! Exit codes: 0 gate passed, 1 gate breached, 2 usage or malformed
//! input.

use std::process::ExitCode;

use scada_analyzer::service::{parse_json, Json};

/// Default bound on `delta_verify / warm_verify` (`--gate delta`).
const DEFAULT_MAX_RATIO: f64 = 4.0;

/// Default bound on `sharded_p99 / single_p99` (`--gate service`).
const DEFAULT_SERVICE_MAX_RATIO: f64 = 2.0;

/// Default bound on `replay / cold_build` (`--gate recovery`).
const DEFAULT_RECOVERY_MAX_RATIO: f64 = 10.0;

/// Default bound on `delta_dedup / cold_per_config` (`--gate fleet`).
const DEFAULT_FLEET_MAX_RATIO: f64 = 0.5;

/// One parsed benchmark record.
struct Record {
    label: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: u64,
    /// Tail latency, present only in `service_load` records.
    p99_ns: Option<f64>,
}

fn parse_records(text: &str) -> Result<Vec<Record>, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let field = |name: &str| -> Result<f64, String> {
            value
                .get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {}: missing numeric `{name}`", i + 1))
        };
        records.push(Record {
            label: value
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: missing `label`", i + 1))?
                .to_string(),
            mean_ns: field("mean_ns")?,
            min_ns: field("min_ns")?,
            max_ns: field("max_ns")?,
            samples: field("samples")? as u64,
            p99_ns: value.get("p99_ns").and_then(Json::as_f64),
        });
    }
    Ok(records)
}

/// The named series' record; the last wins if a label repeats (a
/// re-run appends to the same file).
fn record_of<'r>(records: &'r [Record], label: &str) -> Result<&'r Record, String> {
    records
        .iter()
        .rev()
        .find(|r| r.label == label)
        .ok_or_else(|| format!("no `{label}` record in the input (did the bench run?)"))
}

/// Mean of the named series.
fn mean_of(records: &[Record], label: &str) -> Result<f64, String> {
    record_of(records, label).map(|r| r.mean_ns)
}

/// p99 of the named series (only `service_load` records carry one).
fn p99_of(records: &[Record], label: &str) -> Result<f64, String> {
    record_of(records, label)?
        .p99_ns
        .ok_or_else(|| format!("`{label}` record has no `p99_ns` field"))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut max_ratio: Option<f64> = None;
    let mut gate = "delta".to_string();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--max-ratio" {
            max_ratio = Some(
                args.get(i + 1)
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|r| *r > 0.0)
                    .ok_or("--max-ratio requires a positive number")?,
            );
            i += 2;
        } else if args[i] == "--gate" {
            gate = args
                .get(i + 1)
                .filter(|g| matches!(g.as_str(), "delta" | "service" | "recovery" | "fleet"))
                .ok_or("--gate requires `delta`, `service`, `recovery`, or `fleet`")?
                .to_string();
            i += 2;
        } else if args[i].starts_with("--") {
            return Err(format!("unknown option `{}`", args[i]));
        } else {
            positional.push(&args[i]);
            i += 1;
        }
    }
    let [input, output] = positional.as_slice() else {
        return Err("usage: bench_gate <records.jsonl> <report.json> \
             [--gate delta|service|recovery|fleet] [--max-ratio N]"
            .to_string());
    };

    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let records = parse_records(&text)?;
    if gate == "service" {
        return run_service_gate(
            &records,
            output,
            max_ratio.unwrap_or(DEFAULT_SERVICE_MAX_RATIO),
        );
    }
    if gate == "recovery" {
        return run_recovery_gate(
            &records,
            output,
            max_ratio.unwrap_or(DEFAULT_RECOVERY_MAX_RATIO),
        );
    }
    if gate == "fleet" {
        return run_fleet_gate(
            &records,
            output,
            max_ratio.unwrap_or(DEFAULT_FLEET_MAX_RATIO),
        );
    }
    let max_ratio = max_ratio.unwrap_or(DEFAULT_MAX_RATIO);
    let warm = mean_of(&records, "delta/verify_warm")?;
    let patch = mean_of(&records, "delta/patch")?;
    let patch_verify = mean_of(&records, "delta/patch_verify")?;
    if warm <= 0.0 {
        return Err("warm verify mean is zero; refusing to divide".to_string());
    }
    let delta_verify = (patch_verify - patch).max(0.0);
    let ratio = delta_verify / warm;
    let pass = ratio <= max_ratio;

    let mut report = String::from("{");
    report.push_str(&format!(
        "\"max_ratio\":{max_ratio},\"warm_ns\":{warm:.1},\"patch_ns\":{patch:.1},\
         \"patch_verify_ns\":{patch_verify:.1},\"delta_verify_ns\":{delta_verify:.1},\
         \"ratio\":{ratio:.3},\"pass\":{pass},\"records\":["
    ));
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            report.push(',');
        }
        report.push_str(&format!(
            "{{\"label\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\
             \"samples\":{}}}",
            r.label, r.mean_ns, r.min_ns, r.max_ns, r.samples
        ));
    }
    report.push_str("]}\n");
    if let Some(dir) = std::path::Path::new(output).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        }
    }
    std::fs::write(output, &report).map_err(|e| format!("cannot write {output}: {e}"))?;

    println!(
        "perf gate: warm {:.1} µs, patch {:.1} µs, patch+verify {:.1} µs -> \
         delta verify {:.1} µs = {ratio:.2}x warm (bound {max_ratio}x): {}",
        warm / 1e3,
        patch / 1e3,
        patch_verify / 1e3,
        delta_verify / 1e3,
        if pass { "PASS" } else { "FAIL" },
    );
    Ok(if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// The `--gate service` arm: sharded p99 bounded against single-shard
/// p99 under identical traffic.
fn run_service_gate(records: &[Record], output: &str, max_ratio: f64) -> Result<ExitCode, String> {
    let single = p99_of(records, "service_load/gate_single")?;
    let sharded = p99_of(records, "service_load/gate_sharded")?;
    if single <= 0.0 {
        return Err("single-shard p99 is zero; refusing to divide".to_string());
    }
    let ratio = sharded / single;
    let pass = ratio <= max_ratio;

    let mut report = String::from("{");
    report.push_str(&format!(
        "\"gate\":\"service\",\"max_ratio\":{max_ratio},\"single_p99_ns\":{single:.1},\
         \"sharded_p99_ns\":{sharded:.1},\"ratio\":{ratio:.3},\"pass\":{pass},\"records\":["
    ));
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            report.push(',');
        }
        report.push_str(&format!(
            "{{\"label\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\
             \"samples\":{}}}",
            r.label, r.mean_ns, r.min_ns, r.max_ns, r.samples
        ));
    }
    report.push_str("]}\n");
    if let Some(dir) = std::path::Path::new(output).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        }
    }
    std::fs::write(output, &report).map_err(|e| format!("cannot write {output}: {e}"))?;

    println!(
        "perf gate (service): single p99 {:.1} µs, sharded p99 {:.1} µs -> \
         {ratio:.2}x (bound {max_ratio}x): {}",
        single / 1e3,
        sharded / 1e3,
        if pass { "PASS" } else { "FAIL" },
    );
    Ok(if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// The `--gate recovery` arm: journal replay bounded against one cold
/// build of the same scripted session.
fn run_recovery_gate(records: &[Record], output: &str, max_ratio: f64) -> Result<ExitCode, String> {
    let cold = mean_of(records, "recovery/cold_build")?;
    let replay = mean_of(records, "recovery/replay")?;
    if cold <= 0.0 {
        return Err("cold-build mean is zero; refusing to divide".to_string());
    }
    let ratio = replay / cold;
    let pass = ratio <= max_ratio;

    let mut report = String::from("{");
    report.push_str(&format!(
        "\"gate\":\"recovery\",\"max_ratio\":{max_ratio},\"cold_build_ns\":{cold:.1},\
         \"replay_ns\":{replay:.1},\"ratio\":{ratio:.3},\"pass\":{pass},\"records\":["
    ));
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            report.push(',');
        }
        report.push_str(&format!(
            "{{\"label\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\
             \"samples\":{}}}",
            r.label, r.mean_ns, r.min_ns, r.max_ns, r.samples
        ));
    }
    report.push_str("]}\n");
    if let Some(dir) = std::path::Path::new(output).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        }
    }
    std::fs::write(output, &report).map_err(|e| format!("cannot write {output}: {e}"))?;

    println!(
        "perf gate (recovery): cold build {:.1} µs, replay {:.1} µs -> \
         {ratio:.2}x (bound {max_ratio}x): {}",
        cold / 1e3,
        replay / 1e3,
        if pass { "PASS" } else { "FAIL" },
    );
    Ok(if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// The `--gate fleet` arm: the delta-deduplicated portfolio audit
/// bounded against the cold-per-config audit of the same fleet.
fn run_fleet_gate(records: &[Record], output: &str, max_ratio: f64) -> Result<ExitCode, String> {
    let cold = mean_of(records, "fleet/cold_per_config")?;
    let dedup = mean_of(records, "fleet/delta_dedup")?;
    if cold <= 0.0 {
        return Err("cold-per-config mean is zero; refusing to divide".to_string());
    }
    let ratio = dedup / cold;
    let pass = ratio <= max_ratio;

    let mut report = String::from("{");
    report.push_str(&format!(
        "\"gate\":\"fleet\",\"max_ratio\":{max_ratio},\"cold_per_config_ns\":{cold:.1},\
         \"delta_dedup_ns\":{dedup:.1},\"ratio\":{ratio:.3},\"pass\":{pass},\"records\":["
    ));
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            report.push(',');
        }
        report.push_str(&format!(
            "{{\"label\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\
             \"samples\":{}}}",
            r.label, r.mean_ns, r.min_ns, r.max_ns, r.samples
        ));
    }
    report.push_str("]}\n");
    if let Some(dir) = std::path::Path::new(output).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        }
    }
    std::fs::write(output, &report).map_err(|e| format!("cannot write {output}: {e}"))?;

    println!(
        "perf gate (fleet): cold-per-config {:.1} ms, delta-dedup {:.1} ms -> \
         {ratio:.2}x (bound {max_ratio}x): {}",
        cold / 1e6,
        dedup / 1e6,
        if pass { "PASS" } else { "FAIL" },
    );
    Ok(if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(usage) => {
            eprintln!("error: {usage}");
            ExitCode::from(2)
        }
    }
}
