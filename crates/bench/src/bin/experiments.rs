//! Regenerates every table and figure of the DSN'16 evaluation.
//!
//! ```text
//! cargo run --release -p scada-bench --bin experiments -- [--fig5a] [--fig5b]
//!     [--fig6] [--fig7a] [--fig7b] [--case-study] [--headline] [--all]
//!     [--runs N] [--seeds N]
//! ```
//!
//! Each experiment prints a paper-style table and writes a CSV under
//! `results/`. See EXPERIMENTS.md for the paper-vs-measured comparison.

use std::path::Path;
use std::time::Duration;

use scada_analyzer::casestudy::{five_bus_case_study, five_bus_fig4};
use scada_analyzer::{
    enumerate_threats, Analyzer, BudgetAxis, Property, ResiliencySpec,
};
use scada_bench::csv::Table;
use scada_bench::{mean, measure, resiliency_boundary, Workload};

const OBS: Property = Property::Observability;
const SEC: Property = Property::SecuredObservability;

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

struct Options {
    runs: usize,
    seeds: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name) || args.iter().any(|a| a == "--all");
    let value = |name: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    if args.is_empty() {
        eprintln!(
            "usage: experiments [--case-study] [--fig5a] [--fig5b] [--fig6] \
             [--fig7a] [--fig7b] [--headline] [--all] [--runs N] [--seeds N]"
        );
        std::process::exit(2);
    }
    let opts = Options {
        runs: value("--runs", 5),
        seeds: value("--seeds", 3) as u64,
    };

    if flag("--case-study") {
        case_study();
    }
    if flag("--fig5a") {
        fig5(OBS, "fig5a", &opts);
    }
    if flag("--fig5b") {
        fig5(SEC, "fig5b", &opts);
    }
    if flag("--fig6") {
        fig6(&opts);
    }
    if flag("--fig7a") {
        fig7a(&opts);
    }
    if flag("--fig7b") {
        fig7b(&opts);
    }
    if flag("--headline") {
        headline();
    }
}

/// §IV — both case-study scenarios, paper claim vs measured outcome.
fn case_study() {
    println!("== Case study (paper §IV) ==");
    let fig3 = five_bus_case_study();
    let fig4 = five_bus_fig4();
    let mut table = Table::new(["experiment", "paper", "measured", "match"]);

    let mut a3 = Analyzer::new(&fig3);
    let mut a4 = Analyzer::new(&fig4);

    let row = |table: &mut Table, name: &str, paper: &str, measured: String| {
        let ok = paper == measured;
        table.push([name, paper, &measured, if ok { "yes" } else { "NO" }]);
    };

    let v = a3.verify(OBS, ResiliencySpec::split(1, 1));
    row(&mut table, "S1 fig3 (1,1) observability", "resilient", verdict_str(&v));
    let space = enumerate_threats(&fig3, OBS, ResiliencySpec::split(2, 1), 64);
    row(
        &mut table,
        "S1 fig3 (2,1) threat vectors",
        "9",
        space.len().to_string(),
    );
    let has = space.vectors.iter().any(|v| {
        v.ieds.iter().map(|d| d.one_based()).collect::<Vec<_>>() == vec![2, 7]
            && v.rtus.iter().map(|d| d.one_based()).collect::<Vec<_>>() == vec![11]
    });
    row(
        &mut table,
        "S1 fig3 {IED2,IED7,RTU11} found",
        "yes",
        if has { "yes" } else { "no" }.into(),
    );
    let max = a3.max_resiliency(OBS, BudgetAxis::IedsOnly, 1);
    row(
        &mut table,
        "S1 fig3 max IED-only",
        "3",
        max.map_or("none".into(), |k| k.to_string()),
    );
    let v = a4.verify(OBS, ResiliencySpec::split(1, 1));
    row(&mut table, "S1 fig4 (1,1) observability", "threat", verdict_str(&v));
    let v = a4.verify(OBS, ResiliencySpec::split(0, 1));
    row(&mut table, "S1 fig4 (0,1) observability", "threat", verdict_str(&v));
    let max = a4.max_resiliency(OBS, BudgetAxis::IedsOnly, 1);
    row(
        &mut table,
        "S1 fig4 max IED-only",
        "3",
        max.map_or("none".into(), |k| k.to_string()),
    );

    let v = a3.verify(SEC, ResiliencySpec::split(1, 1));
    row(&mut table, "S2 fig3 (1,1) secured", "threat", verdict_str(&v));
    let space = enumerate_threats(&fig3, SEC, ResiliencySpec::split(1, 1), 64);
    row(
        &mut table,
        "S2 fig3 (1,1) secured vectors",
        "5",
        space.len().to_string(),
    );
    let v = a3.verify(SEC, ResiliencySpec::split(1, 0));
    row(&mut table, "S2 fig3 (1,0) secured", "resilient", verdict_str(&v));
    let v = a3.verify(SEC, ResiliencySpec::split(0, 1));
    row(&mut table, "S2 fig3 (0,1) secured", "resilient", verdict_str(&v));
    let space = enumerate_threats(&fig4, SEC, ResiliencySpec::split(0, 1), 64);
    row(
        &mut table,
        "S2 fig4 (0,1) secured vectors",
        "1",
        space.len().to_string(),
    );

    print!("{}", table.to_aligned());
    table
        .write_to(Path::new("results/case_study.csv"))
        .expect("write results/case_study.csv");
    println!();
}

fn verdict_str(v: &scada_analyzer::Verdict) -> String {
    if v.is_resilient() {
        "resilient".into()
    } else {
        "threat".into()
    }
}

/// Fig 5(a)/(b): execution time vs bus size, sat and unsat series.
fn fig5(property: Property, name: &str, opts: &Options) {
    println!("== {name}: time vs problem size ({property}) ==");
    let mut table = Table::new([
        "buses",
        "field_devices",
        "measurements",
        "vars",
        "clauses",
        "k_unsat",
        "k_sat",
        "unsat_ms",
        "sat_ms",
    ]);
    for buses in [14usize, 30, 57, 118] {
        let mut unsat_times = Vec::new();
        let mut sat_times = Vec::new();
        let mut field = 0;
        let mut meas = 0;
        let mut vars = 0;
        let mut clauses = 0;
        let mut k_unsat_sum = 0.0;
        let mut k_sat_sum = 0.0;
        let mut boundaries: f64 = 0.0;
        for seed in 0..opts.seeds {
            let input = Workload {
                buses,
                density: 0.9,
                hierarchy: 1,
                secure_fraction: 0.9,
                seed,
                ..Default::default()
            }
            .build();
            field = input.field_devices().len();
            meas = input.measurements.len();
            let Some((k_unsat, k_sat)) = resiliency_boundary(&input, property, 8) else {
                continue;
            };
            k_unsat_sum += k_unsat as f64;
            k_sat_sum += k_sat as f64;
            boundaries += 1.0;
            for _ in 0..opts.runs {
                let m = measure(&input, property, ResiliencySpec::total(k_unsat));
                assert!(m.resilient);
                unsat_times.push(m.duration);
                vars = m.variables;
                clauses = m.clauses;
                let m = measure(&input, property, ResiliencySpec::total(k_sat));
                assert!(!m.resilient);
                sat_times.push(m.duration);
            }
        }
        let b = boundaries.max(1.0);
        table.push([
            buses.to_string(),
            field.to_string(),
            meas.to_string(),
            vars.to_string(),
            clauses.to_string(),
            format!("{:.1}", k_unsat_sum / b),
            format!("{:.1}", k_sat_sum / b),
            ms(mean(&unsat_times)),
            ms(mean(&sat_times)),
        ]);
    }
    print!("{}", table.to_aligned());
    table
        .write_to(Path::new(&format!("results/{name}.csv")))
        .expect("write csv");
    println!();
}

/// Fig 6: execution time vs hierarchy level (14- and 57-bus).
fn fig6(opts: &Options) {
    println!("== fig6: time vs hierarchy level (observability) ==");
    let mut table = Table::new(["buses", "hierarchy", "unsat_ms", "sat_ms"]);
    for buses in [14usize, 57] {
        for hierarchy in 1..=4 {
            let mut unsat_times = Vec::new();
            let mut sat_times = Vec::new();
            for seed in 0..opts.seeds {
                let input = Workload {
                    buses,
                    density: 0.9,
                    hierarchy,
                    secure_fraction: 0.9,
                    seed,
                    ..Default::default()
                }
                .build();
                let Some((k_unsat, k_sat)) = resiliency_boundary(&input, OBS, 8) else {
                    continue;
                };
                for _ in 0..opts.runs {
                    let m = measure(&input, OBS, ResiliencySpec::total(k_unsat));
                    unsat_times.push(m.duration);
                    let m = measure(&input, OBS, ResiliencySpec::total(k_sat));
                    sat_times.push(m.duration);
                }
            }
            table.push([
                buses.to_string(),
                hierarchy.to_string(),
                ms(mean(&unsat_times)),
                ms(mean(&sat_times)),
            ]);
        }
    }
    print!("{}", table.to_aligned());
    table
        .write_to(Path::new("results/fig6.csv"))
        .expect("write csv");
    println!();
}

/// Fig 7a: maximum resiliency vs measurement density (14-bus).
fn fig7a(opts: &Options) {
    println!("== fig7a: max resiliency vs measurement density (14-bus) ==");
    let mut table = Table::new(["density_pct", "avg_measurements", "max_ied", "max_rtu"]);
    for density in [0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let mut ied_sum = 0.0;
        let mut rtu_sum = 0.0;
        let mut meas_sum = 0.0;
        let mut n = 0.0;
        for seed in 0..opts.seeds {
            let input = Workload {
                buses: 14,
                density,
                hierarchy: 1,
                secure_fraction: 1.0,
                seed,
                ..Default::default()
            }
            .build();
            let mut analyzer = Analyzer::new(&input);
            let ied = analyzer
                .max_resiliency(OBS, BudgetAxis::IedsOnly, 1)
                .map_or(-1.0, |k| k as f64);
            let rtu = analyzer
                .max_resiliency(OBS, BudgetAxis::RtusOnly, 1)
                .map_or(-1.0, |k| k as f64);
            ied_sum += ied;
            rtu_sum += rtu;
            meas_sum += input.measurements.len() as f64;
            n += 1.0;
        }
        table.push([
            format!("{:.0}", density * 100.0),
            format!("{:.1}", meas_sum / n),
            format!("{:.2}", ied_sum / n),
            format!("{:.2}", rtu_sum / n),
        ]);
    }
    print!("{}", table.to_aligned());
    table
        .write_to(Path::new("results/fig7a.csv"))
        .expect("write csv");
    println!();
}

/// Fig 7b: threat-space size vs hierarchy level (14-bus).
fn fig7b(opts: &Options) {
    println!("== fig7b: threat vectors vs hierarchy level (14-bus) ==");
    let mut table = Table::new(["hierarchy", "spec", "avg_threat_vectors"]);
    for hierarchy in 1..=4usize {
        for (k1, k2) in [(1, 1), (2, 1), (2, 2)] {
            let mut total = 0.0;
            let mut n = 0.0;
            for seed in 0..opts.seeds {
                let input = Workload {
                    buses: 14,
                    density: 0.7,
                    hierarchy,
                    secure_fraction: 0.9,
                    seed: seed + 100,
                    ..Default::default()
                }
                .build();
                let space =
                    enumerate_threats(&input, OBS, ResiliencySpec::split(k1, k2), 2000);
                total += space.len() as f64;
                n += 1.0;
            }
            table.push([
                hierarchy.to_string(),
                format!("({k1},{k2})"),
                format!("{:.1}", total / n),
            ]);
        }
    }
    print!("{}", table.to_aligned());
    table
        .write_to(Path::new("results/fig7b.csv"))
        .expect("write csv");
    println!();
}

/// §VII headline: a ~400-field-device SCADA system verifies in bounded
/// time (the paper: within 30 s on an i5).
fn headline() {
    println!("== headline: ~400-device SCADA system ==");
    let input = Workload {
        buses: 118,
        density: 1.0,
        hierarchy: 2,
        secure_fraction: 0.9,
        seed: 0,
        ..Default::default()
    }
    .build();
    let devices = input.field_devices().len();
    println!("field devices: {devices}");
    let mut table = Table::new(["property", "k", "verdict", "time_ms", "vars", "clauses"]);
    for property in [OBS, SEC] {
        for k in [1usize, 2, 3] {
            let m = measure(&input, property, ResiliencySpec::total(k));
            table.push([
                property.to_string(),
                k.to_string(),
                if m.resilient { "unsat" } else { "sat" }.to_string(),
                ms(m.duration),
                m.variables.to_string(),
                m.clauses.to_string(),
            ]);
        }
    }
    print!("{}", table.to_aligned());
    table
        .write_to(Path::new("results/headline.csv"))
        .expect("write csv");
    println!();
}
