//! Regenerates every table and figure of the DSN'16 evaluation.
//!
//! ```text
//! cargo run --release -p scada-bench --bin experiments -- [--fig5a] [--fig5b]
//!     [--fig6] [--fig7a] [--fig7b] [--case-study] [--headline] [--overhead]
//!     [--all] [--runs N] [--seeds N] [--jobs N] [--timeout DUR]
//!     [--conflict-budget N] [--certify] [--smoke]
//! ```
//!
//! Each experiment prints a paper-style table and writes a CSV under
//! `results/`. The fig5/fig6 fleets, the fig7 sweeps, and the headline
//! run fan out across `--jobs` workers (default: all available cores;
//! `--jobs 1` reproduces the serial harness). `--smoke` is a fast CI
//! self-check on a tiny 14-bus fleet. See EXPERIMENTS.md for the
//! paper-vs-measured comparison.
//!
//! `--timeout` / `--conflict-budget` bound each individual query —
//! including the case-study and fig7b threat enumerations: a query that
//! runs out of resources lands as an `unknown` cell in the tables and
//! CSVs instead of aborting (or hanging) the whole sweep.
//!
//! `--trace PATH` writes a structured JSONL event trace of every solve
//! attempt; `--stats` prints a metrics summary table after the run.
//!
//! `--certify` re-checks every verdict of the run with the independent
//! proof/model checker ([`scada_analyzer::certify`]); any certification
//! failure makes the process exit with code 4. `--overhead` measures
//! the certification overhead itself on an IEEE-30 sweep (every query
//! solved plain and certified side by side) and fails if the check ever
//! costs more than 2x the solve.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use scada_analyzer::casestudy::{five_bus_case_study, five_bus_fig4};
use scada_analyzer::parallel::{par_map, par_map_observed};
use scada_analyzer::{
    enumerate_threats_with_limited, par_max_resiliency_certified, parse_duration, Analyzer,
    BudgetAxis, CertifyOptions, JsonlTracer, MetricsRegistry, Obs, Property, QueryLimits,
    ResiliencySpec, RetryPolicy,
};
use scada_bench::csv::Table;
use scada_bench::{
    mean, measure_certified, measure_fleet_certified, resiliency_boundary, FleetQuery, Workload,
};

const OBS: Property = Property::Observability;
const SEC: Property = Property::SecuredObservability;

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Mean time cell: `unknown` when every sample of the series was cut
/// short by a resource limit, the mean otherwise.
fn ms_cell(times: &[Duration], unknowns: usize) -> String {
    if times.is_empty() && unknowns > 0 {
        "unknown".into()
    } else {
        ms(mean(times))
    }
}

struct Options {
    runs: usize,
    seeds: u64,
    jobs: usize,
    limits: QueryLimits,
    obs: Obs,
    certify: CertifyOptions,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name) || args.iter().any(|a| a == "--all");
    // The value following option `name`; the option being present
    // without a value is a usage error.
    let raw = |name: &str| -> Option<&String> {
        match args.iter().position(|a| a == name) {
            None => None,
            Some(i) => match args.get(i + 1) {
                Some(v) => Some(v),
                None => {
                    eprintln!("error: {name} requires a value");
                    std::process::exit(2);
                }
            },
        }
    };
    // A numeric option; malformed values are usage errors, not silent
    // fallbacks to the default.
    let value = |name: &str, default: usize| -> usize {
        match raw(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("error: bad {name} `{v}` (expected a number)");
                std::process::exit(2);
            }),
        }
    };
    if args.is_empty() {
        eprintln!(
            "usage: experiments [--case-study] [--fig5a] [--fig5b] [--fig6] \
             [--fig7a] [--fig7b] [--headline] [--overhead] [--all] [--runs N] \
             [--seeds N] [--jobs N] [--timeout DUR] [--conflict-budget N] \
             [--trace PATH] [--stats] [--certify] [--smoke]"
        );
        std::process::exit(2);
    }
    let mut limits = QueryLimits::none();
    if let Some(v) = raw("--timeout") {
        let Some(timeout) = parse_duration(v) else {
            eprintln!("error: bad --timeout `{v}` (use e.g. 150ms, 5s, 2m)");
            std::process::exit(2);
        };
        limits = limits.with_timeout(timeout);
    }
    if let Some(v) = raw("--conflict-budget") {
        let Ok(budget) = v.parse::<u64>() else {
            eprintln!("error: bad --conflict-budget `{v}` (expected a number)");
            std::process::exit(2);
        };
        limits = limits
            .with_conflict_budget(budget)
            .with_retry(RetryPolicy::escalating(4));
    }

    // Observability: a JSONL trace sink and/or a metrics registry,
    // shared by every experiment of the run.
    let mut obs = Obs::none();
    let mut tracer: Option<Arc<JsonlTracer>> = None;
    if let Some(trace_path) = raw("--trace") {
        match JsonlTracer::to_file(Path::new(trace_path)) {
            Ok(sink) => {
                let sink = Arc::new(sink);
                tracer = Some(sink.clone());
                obs = obs.with_tracer(sink);
            }
            Err(e) => {
                eprintln!("error: cannot create trace file {trace_path}: {e}");
                std::process::exit(2);
            }
        }
    }
    let mut metrics: Option<Arc<MetricsRegistry>> = None;
    if args.iter().any(|a| a == "--stats") {
        let registry = Arc::new(MetricsRegistry::new());
        metrics = Some(registry.clone());
        obs = obs.with_metrics(registry);
    }

    // `--certify`: re-check every verdict of the run; all checks tally
    // into this one shared log. (An exact match on purpose — unlike the
    // experiment selectors, `--all` does not imply it.)
    let certify = CertifyOptions {
        enabled: args.iter().any(|a| a == "--certify"),
        ..CertifyOptions::default()
    };

    let opts = Options {
        runs: value("--runs", 5),
        seeds: value("--seeds", 3) as u64,
        jobs: value("--jobs", 0),
        limits,
        obs,
        certify,
    };

    // CI smoke check; deliberately not part of --all.
    if args.iter().any(|a| a == "--smoke") {
        smoke(&opts);
    }

    if flag("--case-study") {
        case_study(&opts);
    }
    if flag("--fig5a") {
        fig5(OBS, "fig5a", &opts);
    }
    if flag("--fig5b") {
        fig5(SEC, "fig5b", &opts);
    }
    if flag("--fig6") {
        fig6(&opts);
    }
    if flag("--fig7a") {
        fig7a(&opts);
    }
    if flag("--fig7b") {
        fig7b(&opts);
    }
    if flag("--headline") {
        headline(&opts);
    }
    if flag("--overhead") {
        overhead(&opts);
    }

    if let Some(tracer) = &tracer {
        tracer.flush();
        eprintln!("trace: {} event(s) written", tracer.events());
    }
    if let Some(metrics) = &metrics {
        println!("== metrics ==");
        let mut table = Table::new(["metric", "count", "sum", "mean", "min", "max"]);
        for row in metrics.rows() {
            table.push(row);
        }
        print!("{}", table.to_aligned());
    }
    if opts.certify.enabled {
        let log = &opts.certify.log;
        println!(
            "certification: {} verdict(s) checked, {} failure(s)",
            log.checks(),
            log.failures()
        );
        if log.failures() > 0 {
            if let Some(reason) = log.first_failure() {
                eprintln!("certification failure: {reason}");
            }
            std::process::exit(4);
        }
    }
}

/// A fast self-check for CI: a tiny 14-bus fleet through the parallel
/// runner, asserting parallel results agree with the serial baseline.
fn smoke(opts: &Options) {
    let jobs = if opts.jobs == 0 { 2 } else { opts.jobs };
    println!("== smoke: 14-bus fleet, {jobs} worker(s) ==");
    let fleet: Vec<FleetQuery> = (0..2u64)
        .map(|seed| FleetQuery {
            workload: Workload {
                seed,
                ..Default::default()
            },
            property: OBS,
            spec: ResiliencySpec::total(1),
        })
        .collect();
    let serial = measure_fleet_certified(&fleet, 1, &opts.limits, &opts.obs, &opts.certify);
    let parallel = measure_fleet_certified(&fleet, jobs, &opts.limits, &opts.obs, &opts.certify);
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        // Definite verdicts must agree; an `unknown` (possible only when
        // running bounded) is timing-dependent and tolerated.
        if !s.outcome.is_unknown() && !p.outcome.is_unknown() {
            assert_eq!(s.outcome, p.outcome, "verdict drift at fleet entry {i}");
        }
        assert_eq!(
            s.variables, p.variables,
            "encoding drift at fleet entry {i}"
        );
        println!(
            "  entry {i}: {} ({} vars, {} clauses)",
            p.outcome.label(),
            p.variables,
            p.clauses,
        );
    }
    let input = Workload::default().build();
    let serial_max =
        Analyzer::new(&input).max_resiliency_limited(OBS, BudgetAxis::IedsOnly, 1, &opts.limits);
    let parallel_max = par_max_resiliency_certified(
        &input,
        OBS,
        BudgetAxis::IedsOnly,
        1,
        jobs,
        &opts.limits,
        &opts.obs,
        &opts.certify,
    );
    if opts.limits.is_unbounded() {
        assert_eq!(serial_max, parallel_max, "max-resiliency drift");
        println!("  max IED-only resiliency: {parallel_max:?} (serial == parallel)");
    } else {
        // Bounded sweeps are sound lower bounds; serial and parallel may
        // legitimately stop at different budgets under a wall clock.
        println!("  max IED-only resiliency ≥ {parallel_max:?} (bounded sweep)");
    }
    println!("smoke ok");
    println!();
}

/// §IV — both case-study scenarios, paper claim vs measured outcome.
fn case_study(opts: &Options) {
    println!("== Case study (paper §IV) ==");
    let fig3 = five_bus_case_study();
    let fig4 = five_bus_fig4();
    let mut table = Table::new(["experiment", "paper", "measured", "match"]);

    let mut a3 = Analyzer::with_options(&fig3, opts.obs.clone(), opts.certify.clone());
    let mut a4 = Analyzer::with_options(&fig4, opts.obs.clone(), opts.certify.clone());

    // Enumeration mutates the analyzer's solver with blocking clauses,
    // so each threat-space count gets its own fresh analyzer; `--timeout`
    // / `--conflict-budget` bound the whole enumeration run.
    let enumerate = |input, property, spec| {
        let mut analyzer = Analyzer::with_options(input, opts.obs.clone(), opts.certify.clone());
        enumerate_threats_with_limited(&mut analyzer, property, spec, 64, &opts.limits)
    };

    let row = |table: &mut Table, name: &str, paper: &str, measured: String| {
        let ok = paper == measured;
        table.push([name, paper, &measured, if ok { "yes" } else { "NO" }]);
    };

    let v = a3.verify(OBS, ResiliencySpec::split(1, 1));
    row(
        &mut table,
        "S1 fig3 (1,1) observability",
        "resilient",
        verdict_str(&v),
    );
    let space = enumerate(&fig3, OBS, ResiliencySpec::split(2, 1));
    row(
        &mut table,
        "S1 fig3 (2,1) threat vectors",
        "9",
        space.len().to_string(),
    );
    let has = space.vectors.iter().any(|v| {
        v.ieds.iter().map(|d| d.one_based()).collect::<Vec<_>>() == vec![2, 7]
            && v.rtus.iter().map(|d| d.one_based()).collect::<Vec<_>>() == vec![11]
    });
    row(
        &mut table,
        "S1 fig3 {IED2,IED7,RTU11} found",
        "yes",
        if has { "yes" } else { "no" }.into(),
    );
    let max = a3.max_resiliency(OBS, BudgetAxis::IedsOnly, 1);
    row(
        &mut table,
        "S1 fig3 max IED-only",
        "3",
        max.map_or("none".into(), |k| k.to_string()),
    );
    let v = a4.verify(OBS, ResiliencySpec::split(1, 1));
    row(
        &mut table,
        "S1 fig4 (1,1) observability",
        "threat",
        verdict_str(&v),
    );
    let v = a4.verify(OBS, ResiliencySpec::split(0, 1));
    row(
        &mut table,
        "S1 fig4 (0,1) observability",
        "threat",
        verdict_str(&v),
    );
    let max = a4.max_resiliency(OBS, BudgetAxis::IedsOnly, 1);
    row(
        &mut table,
        "S1 fig4 max IED-only",
        "3",
        max.map_or("none".into(), |k| k.to_string()),
    );

    let v = a3.verify(SEC, ResiliencySpec::split(1, 1));
    row(
        &mut table,
        "S2 fig3 (1,1) secured",
        "threat",
        verdict_str(&v),
    );
    let space = enumerate(&fig3, SEC, ResiliencySpec::split(1, 1));
    row(
        &mut table,
        "S2 fig3 (1,1) secured vectors",
        "5",
        space.len().to_string(),
    );
    let v = a3.verify(SEC, ResiliencySpec::split(1, 0));
    row(
        &mut table,
        "S2 fig3 (1,0) secured",
        "resilient",
        verdict_str(&v),
    );
    let v = a3.verify(SEC, ResiliencySpec::split(0, 1));
    row(
        &mut table,
        "S2 fig3 (0,1) secured",
        "resilient",
        verdict_str(&v),
    );
    let space = enumerate(&fig4, SEC, ResiliencySpec::split(0, 1));
    row(
        &mut table,
        "S2 fig4 (0,1) secured vectors",
        "1",
        space.len().to_string(),
    );

    print!("{}", table.to_aligned());
    table
        .write_to(Path::new("results/case_study.csv"))
        .expect("write results/case_study.csv");
    println!();
}

fn verdict_str(v: &scada_analyzer::Verdict) -> String {
    match v {
        scada_analyzer::Verdict::Resilient => "resilient".into(),
        scada_analyzer::Verdict::Threat(_) => "threat".into(),
        scada_analyzer::Verdict::Unknown { .. } => "unknown".into(),
    }
}

/// Fig 5(a)/(b): execution time vs bus size, sat and unsat series. The
/// per-seed boundary searches and the runs×seeds measurement fleet both
/// fan out across `--jobs` workers.
fn fig5(property: Property, name: &str, opts: &Options) {
    println!("== {name}: time vs problem size ({property}) ==");
    let mut table = Table::new([
        "buses",
        "field_devices",
        "measurements",
        "vars",
        "clauses",
        "k_unsat",
        "k_sat",
        "unsat_ms",
        "sat_ms",
        "mean_conflicts",
        "unknown",
    ]);
    for buses in [14usize, 30, 57, 118] {
        let workloads: Vec<Workload> = (0..opts.seeds)
            .map(|seed| Workload {
                buses,
                density: 0.9,
                hierarchy: 1,
                secure_fraction: 0.9,
                seed,
            })
            .collect();
        let boundaries = par_map(&workloads, opts.jobs, |_, w| {
            let input = w.build();
            (
                input.field_devices().len(),
                input.measurements.len(),
                resiliency_boundary(&input, property, 8),
            )
        });

        let mut fleet = Vec::new();
        let mut expect_resilient = Vec::new();
        let mut field = 0;
        let mut meas = 0;
        let mut k_unsat_sum = 0.0;
        let mut k_sat_sum = 0.0;
        let mut found: f64 = 0.0;
        for (w, (f, m, boundary)) in workloads.iter().zip(&boundaries) {
            field = *f;
            meas = *m;
            let Some((k_unsat, k_sat)) = boundary else {
                continue;
            };
            k_unsat_sum += *k_unsat as f64;
            k_sat_sum += *k_sat as f64;
            found += 1.0;
            for _ in 0..opts.runs {
                for (k, resilient) in [(k_unsat, true), (k_sat, false)] {
                    fleet.push(FleetQuery {
                        workload: *w,
                        property,
                        spec: ResiliencySpec::total(*k),
                    });
                    expect_resilient.push(resilient);
                }
            }
        }
        let measured =
            measure_fleet_certified(&fleet, opts.jobs, &opts.limits, &opts.obs, &opts.certify);

        let mut unsat_times = Vec::new();
        let mut sat_times = Vec::new();
        let mut unknowns = 0usize;
        let mut conflicts_sum = 0u64;
        let mut decided = 0u64;
        let mut vars = 0;
        let mut clauses = 0;
        for (m, &resilient) in measured.iter().zip(&expect_resilient) {
            if m.outcome.is_unknown() {
                // A bounded run cut this sample short: record the cell as
                // unknown instead of aborting the sweep.
                unknowns += 1;
                continue;
            }
            assert_eq!(
                m.outcome.is_resilient(),
                resilient,
                "boundary query flipped verdict"
            );
            conflicts_sum += m.conflicts;
            decided += 1;
            if resilient {
                unsat_times.push(m.duration);
                vars = m.variables;
                clauses = m.clauses;
            } else {
                sat_times.push(m.duration);
            }
        }
        let b = found.max(1.0);
        table.push([
            buses.to_string(),
            field.to_string(),
            meas.to_string(),
            vars.to_string(),
            clauses.to_string(),
            format!("{:.1}", k_unsat_sum / b),
            format!("{:.1}", k_sat_sum / b),
            ms_cell(&unsat_times, unknowns),
            ms_cell(&sat_times, unknowns),
            format!("{:.1}", conflicts_sum as f64 / decided.max(1) as f64),
            unknowns.to_string(),
        ]);
    }
    print!("{}", table.to_aligned());
    table
        .write_to(Path::new(&format!("results/{name}.csv")))
        .expect("write csv");
    println!();
}

/// Fig 6: execution time vs hierarchy level (14- and 57-bus), measured
/// through the parallel fleet runner.
fn fig6(opts: &Options) {
    println!("== fig6: time vs hierarchy level (observability) ==");
    let mut table = Table::new(["buses", "hierarchy", "unsat_ms", "sat_ms"]);
    for buses in [14usize, 57] {
        for hierarchy in 1..=4 {
            let workloads: Vec<Workload> = (0..opts.seeds)
                .map(|seed| Workload {
                    buses,
                    density: 0.9,
                    hierarchy,
                    secure_fraction: 0.9,
                    seed,
                })
                .collect();
            let boundaries = par_map(&workloads, opts.jobs, |_, w| {
                let input = w.build();
                resiliency_boundary(&input, OBS, 8)
            });

            let mut fleet = Vec::new();
            let mut is_unsat = Vec::new();
            for (w, boundary) in workloads.iter().zip(&boundaries) {
                let Some((k_unsat, k_sat)) = boundary else {
                    continue;
                };
                for _ in 0..opts.runs {
                    for (k, unsat) in [(k_unsat, true), (k_sat, false)] {
                        fleet.push(FleetQuery {
                            workload: *w,
                            property: OBS,
                            spec: ResiliencySpec::total(*k),
                        });
                        is_unsat.push(unsat);
                    }
                }
            }
            let measured =
                measure_fleet_certified(&fleet, opts.jobs, &opts.limits, &opts.obs, &opts.certify);

            let mut unsat_times = Vec::new();
            let mut sat_times = Vec::new();
            let mut unknowns = 0usize;
            for (m, &unsat) in measured.iter().zip(&is_unsat) {
                if m.outcome.is_unknown() {
                    unknowns += 1;
                } else if unsat {
                    unsat_times.push(m.duration);
                } else {
                    sat_times.push(m.duration);
                }
            }
            table.push([
                buses.to_string(),
                hierarchy.to_string(),
                ms_cell(&unsat_times, unknowns),
                ms_cell(&sat_times, unknowns),
            ]);
        }
    }
    print!("{}", table.to_aligned());
    table
        .write_to(Path::new("results/fig6.csv"))
        .expect("write csv");
    println!();
}

/// Fig 7a: maximum resiliency vs measurement density (14-bus); the
/// per-seed searches fan out across workers.
fn fig7a(opts: &Options) {
    println!("== fig7a: max resiliency vs measurement density (14-bus) ==");
    let mut table = Table::new(["density_pct", "avg_measurements", "max_ied", "max_rtu"]);
    for density in [0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let workloads: Vec<Workload> = (0..opts.seeds)
            .map(|seed| Workload {
                buses: 14,
                density,
                hierarchy: 1,
                secure_fraction: 1.0,
                seed,
            })
            .collect();
        let rows = par_map(&workloads, opts.jobs, |_, w| {
            let input = w.build();
            let mut analyzer =
                Analyzer::with_options(&input, opts.obs.clone(), opts.certify.clone());
            let ied = analyzer
                .max_resiliency_limited(OBS, BudgetAxis::IedsOnly, 1, &opts.limits)
                .map_or(-1.0, |k| k as f64);
            let rtu = analyzer
                .max_resiliency_limited(OBS, BudgetAxis::RtusOnly, 1, &opts.limits)
                .map_or(-1.0, |k| k as f64);
            (ied, rtu, input.measurements.len() as f64)
        });
        let n = rows.len().max(1) as f64;
        let ied_sum: f64 = rows.iter().map(|r| r.0).sum();
        let rtu_sum: f64 = rows.iter().map(|r| r.1).sum();
        let meas_sum: f64 = rows.iter().map(|r| r.2).sum();
        table.push([
            format!("{:.0}", density * 100.0),
            format!("{:.1}", meas_sum / n),
            format!("{:.2}", ied_sum / n),
            format!("{:.2}", rtu_sum / n),
        ]);
    }
    print!("{}", table.to_aligned());
    table
        .write_to(Path::new("results/fig7a.csv"))
        .expect("write csv");
    println!();
}

/// Fig 7b: threat-space size vs hierarchy level (14-bus); every
/// (hierarchy, spec, seed) enumeration is an independent fleet job.
fn fig7b(opts: &Options) {
    println!("== fig7b: threat vectors vs hierarchy level (14-bus) ==");
    let mut table = Table::new(["hierarchy", "spec", "avg_threat_vectors"]);
    let mut items = Vec::new();
    for hierarchy in 1..=4usize {
        for (k1, k2) in [(1, 1), (2, 1), (2, 2)] {
            for seed in 0..opts.seeds {
                items.push((hierarchy, k1, k2, seed));
            }
        }
    }
    let counts = par_map_observed(
        &items,
        opts.jobs,
        &opts.obs,
        |_, &(hierarchy, k1, k2, seed), _| {
            let input = Workload {
                buses: 14,
                density: 0.7,
                hierarchy,
                secure_fraction: 0.9,
                seed: seed + 100,
            }
            .build();
            // Bounded enumeration: a limit-exhausted run yields a partial
            // (undecided) space instead of hanging the whole sweep.
            let mut analyzer =
                Analyzer::with_options(&input, opts.obs.clone(), opts.certify.clone());
            enumerate_threats_with_limited(
                &mut analyzer,
                OBS,
                ResiliencySpec::split(k1, k2),
                2000,
                &opts.limits,
            )
            .len() as f64
        },
    );
    for hierarchy in 1..=4usize {
        for (k1, k2) in [(1, 1), (2, 1), (2, 2)] {
            let (total, n): (f64, f64) = items
                .iter()
                .zip(&counts)
                .filter(|((h, a, b, _), _)| *h == hierarchy && *a == k1 && *b == k2)
                .fold((0.0, 0.0), |(t, n), (_, &c)| (t + c, n + 1.0));
            table.push([
                hierarchy.to_string(),
                format!("({k1},{k2})"),
                format!("{:.1}", total / n.max(1.0)),
            ]);
        }
    }
    print!("{}", table.to_aligned());
    table
        .write_to(Path::new("results/fig7b.csv"))
        .expect("write csv");
    println!();
}

/// §VII headline: a ~400-field-device SCADA system verifies in bounded
/// time (the paper: within 30 s on an i5). The six property×budget
/// queries run concurrently.
fn headline(opts: &Options) {
    println!("== headline: ~400-device SCADA system ==");
    let input = Workload {
        buses: 118,
        density: 1.0,
        hierarchy: 2,
        secure_fraction: 0.9,
        seed: 0,
    }
    .build();
    let devices = input.field_devices().len();
    println!("field devices: {devices}");
    let mut table = Table::new([
        "property",
        "k",
        "verdict",
        "time_ms",
        "vars",
        "clauses",
        "conflicts",
        "attempts",
    ]);
    let mut queries = Vec::new();
    for property in [OBS, SEC] {
        for k in [1usize, 2, 3] {
            queries.push((property, k));
        }
    }
    let measured = par_map_observed(&queries, opts.jobs, &opts.obs, |_, &(property, k), _| {
        measure_certified(
            &input,
            property,
            ResiliencySpec::total(k),
            &opts.limits,
            &opts.obs,
            &opts.certify,
        )
    });
    for ((property, k), m) in queries.iter().zip(&measured) {
        use scada_bench::Outcome;
        table.push([
            property.to_string(),
            k.to_string(),
            match m.outcome {
                Outcome::Resilient => "unsat",
                Outcome::Threat => "sat",
                Outcome::Unknown => "unknown",
            }
            .to_string(),
            ms(m.duration),
            m.variables.to_string(),
            m.clauses.to_string(),
            m.conflicts.to_string(),
            m.attempts.to_string(),
        ]);
    }
    print!("{}", table.to_aligned());
    table
        .write_to(Path::new("results/headline.csv"))
        .expect("write csv");
    println!();
}

/// Certification overhead on the IEEE-30 smoke, measured the way
/// `--certify` actually runs: one incremental analyzer per sweep, so
/// the checker ingests the encoding once and each query pays only its
/// own proof replay and model/refutation checks. Every query of the
/// plain sweep is re-run on a certifying analyzer; total check time
/// must stay under 2x the total plain solve time.
fn overhead(opts: &Options) {
    println!("== certification overhead: IEEE-30 sweep ==");
    let input = Workload {
        buses: 30,
        density: 0.9,
        hierarchy: 1,
        secure_fraction: 0.9,
        seed: 0,
    }
    .build();
    let queries: Vec<(Property, usize)> = [OBS, SEC]
        .iter()
        .flat_map(|&p| (0..4).map(move |k| (p, k)))
        .collect();
    let certify = CertifyOptions {
        enabled: true,
        ..opts.certify.clone()
    };
    let mut plain_analyzer = Analyzer::with_obs(&input, opts.obs.clone());
    let mut cert_analyzer = Analyzer::with_options(&input, opts.obs.clone(), certify.clone());
    let mut table = Table::new([
        "property",
        "k",
        "verdict",
        "solve_ms",
        "certified_ms",
        "check_ms",
        "proof_steps",
    ]);
    let mut plain_total = Duration::ZERO;
    let mut check_total = Duration::ZERO;
    for &(property, k) in &queries {
        let spec = ResiliencySpec::total(k);
        let t = Instant::now();
        let plain = plain_analyzer.verify_with_report_limited(property, spec, &opts.limits);
        let solve = t.elapsed();
        plain_total += solve;
        let t = Instant::now();
        let certified = cert_analyzer.verify_with_report_limited(property, spec, &opts.limits);
        let certified_elapsed = t.elapsed();
        assert_eq!(
            verdict_str(&plain.verdict),
            verdict_str(&certified.verdict),
            "certification changed a verdict at {property} k={k}",
        );
        let (check, steps) = match certified.certificate {
            Some(scada_analyzer::Certificate::Proof { steps, elapsed, .. })
            | Some(scada_analyzer::Certificate::Threat { steps, elapsed }) => (elapsed, steps),
            _ => (Duration::ZERO, 0),
        };
        check_total += check;
        table.push([
            property.to_string(),
            k.to_string(),
            verdict_str(&certified.verdict),
            ms(solve),
            ms(certified_elapsed),
            ms(check),
            steps.to_string(),
        ]);
    }
    print!("{}", table.to_aligned());
    table
        .write_to(Path::new("results/certify_overhead.csv"))
        .expect("write csv");
    let ratio = check_total.as_secs_f64() / plain_total.as_secs_f64().max(1e-9);
    println!(
        "checked {} verdict(s), {} failure(s); total check {} ms vs total solve {} ms (ratio {ratio:.2})",
        certify.log.checks(),
        certify.log.failures(),
        ms(check_total),
        ms(plain_total),
    );
    assert_eq!(
        certify.log.failures(),
        0,
        "overhead sweep certification failed: {:?}",
        certify.log.first_failure()
    );
    assert!(
        ratio < 2.0,
        "certification overhead exceeded 2x solve time (ratio {ratio:.2})"
    );
    println!();
}
