//! Minimal CSV output for the experiment sweeps.

use std::fmt::Display;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// A CSV table under construction.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn push<S: Display, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes as CSV (header + rows; fields with commas/quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |field: &str| -> String {
            if field.contains(',') || field.contains('"') || field.contains('\n') {
                format!("\"{}\"", field.replace('"', "\"\""))
            } else {
                field.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }

    /// Renders as an aligned text table for stdout.
    pub fn to_aligned(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let render = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = render(&self.header);
        out.push('\n');
        // Two spaces join each pair of columns; a zero-column table has
        // no rule at all (and must not underflow the separator count).
        let rule = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_shape() {
        let mut t = Table::new(["a", "b"]);
        t.push([1, 2]);
        t.push([3, 4]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.to_csv(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(["x"]);
        t.push(["has,comma"]);
        t.push(["has\"quote"]);
        assert_eq!(t.to_csv(), "x\n\"has,comma\"\n\"has\"\"quote\"\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.push([1]);
    }

    #[test]
    fn aligned_handles_zero_columns() {
        // Regression: `widths.len() - 1` underflowed and panicked here.
        let t = Table::new(Vec::<String>::new());
        let rendered = t.to_aligned();
        assert_eq!(rendered, "\n\n");
    }

    #[test]
    fn aligned_output() {
        let mut t = Table::new(["name", "v"]);
        t.push(["long-name", "1"]);
        let rendered = t.to_aligned();
        assert!(rendered.contains("long-name"));
        assert!(rendered.lines().count() == 3);
    }
}
