//! Property-based determinism check for the parallel engine: on random
//! `Workload`s, every parallel jobs count produces exactly the serial
//! fleet result, and `verify_batch` matches per-query serial analysis.

use proptest::prelude::*;
use scada_analyzer::{verify_batch, Analyzer, Property, ResiliencySpec};
use scada_bench::{measure_fleet, FleetQuery, Workload};

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        prop_oneof![Just(14usize), Just(30usize)],
        0.4f64..1.0,
        1usize..=3,
        0.5f64..1.0,
        0u64..1000,
    )
        .prop_map(
            |(buses, density, hierarchy, secure_fraction, seed)| Workload {
                buses,
                density,
                hierarchy,
                secure_fraction,
                seed,
            },
        )
}

fn property_strategy() -> impl Strategy<Value = Property> {
    prop_oneof![
        Just(Property::Observability),
        Just(Property::SecuredObservability),
        Just(Property::BadDataDetectability),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fleet_is_deterministic_across_jobs(
        workload in workload_strategy(),
        property in property_strategy(),
        k in 0usize..4,
    ) {
        let fleet: Vec<FleetQuery> = (0..4usize)
            .map(|i| FleetQuery {
                workload,
                property,
                spec: ResiliencySpec::total(k + i % 2),
            })
            .collect();
        let serial = measure_fleet(&fleet, 1);
        for jobs in [2usize, 8] {
            let parallel = measure_fleet(&fleet, jobs);
            prop_assert_eq!(parallel.len(), serial.len());
            for (p, s) in parallel.iter().zip(&serial) {
                prop_assert_eq!(p.outcome, s.outcome);
                prop_assert_eq!(p.variables, s.variables);
                prop_assert_eq!(p.clauses, s.clauses);
            }
        }
    }

    #[test]
    fn batch_verdicts_match_serial_on_random_workloads(
        workload in workload_strategy(),
        property in property_strategy(),
    ) {
        let input = workload.build();
        let queries: Vec<(Property, ResiliencySpec)> = (0..3usize)
            .map(|k| (property, ResiliencySpec::total(k)))
            .collect();
        let serial: Vec<_> = queries
            .iter()
            .map(|&(p, s)| Analyzer::new(&input).verify_with_report(p, s))
            .collect();
        for jobs in [1usize, 2, 8] {
            let parallel = verify_batch(&input, &queries, jobs);
            for (p, s) in parallel.iter().zip(&serial) {
                prop_assert_eq!(&p.verdict, &s.verdict);
                prop_assert_eq!(p.encoding.variables, s.encoding.variables);
                prop_assert_eq!(p.encoding.clauses, s.encoding.clauses);
            }
        }
    }
}
