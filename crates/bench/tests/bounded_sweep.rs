//! Acceptance test for resource-bounded sweeps on the synthetic IEEE-57
//! workload: a tightly limited query degrades to `unknown` (or finishes
//! early) without hanging or panicking, and the unlimited run still
//! produces the seed verdicts.

use std::time::{Duration, Instant};

use scada_analyzer::{Property, QueryLimits, ResiliencySpec, RetryPolicy};
use scada_bench::{measure, measure_limited, Workload};

fn ieee57() -> Workload {
    Workload {
        buses: 57,
        density: 0.7,
        hierarchy: 2,
        secure_fraction: 0.8,
        seed: 7,
    }
}

/// A 100ms wall-clock allowance on an IEEE-57 query returns promptly —
/// either `unknown` or a verdict it happened to reach in time — instead
/// of hanging or panicking.
#[test]
fn ieee57_timeout_returns_promptly() {
    let input = ieee57().build();
    let limits = QueryLimits::none().with_timeout(Duration::from_millis(100));
    let started = Instant::now();
    let m = measure_limited(
        &input,
        Property::SecuredObservability,
        ResiliencySpec::total(4),
        &limits,
    );
    // Generous slack for encoding time (the deadline only bounds the
    // solver's search): the point is "no hang", not a hard 100ms.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "bounded query must not hang"
    );
    if m.outcome.is_unknown() {
        // Degraded, as expected for a hard query on a tight clock.
        assert!(!m.outcome.is_resilient());
    }
}

/// An already-expired deadline is the deterministic worst case: the
/// solve aborts on entry with `unknown` and the sweep survives.
#[test]
fn ieee57_expired_deadline_is_unknown() {
    let input = ieee57().build();
    let limits = QueryLimits::none().with_deadline(Instant::now());
    let m = measure_limited(
        &input,
        Property::Observability,
        ResiliencySpec::total(2),
        &limits,
    );
    assert!(m.outcome.is_unknown(), "expired deadline must degrade");
    assert!(m.variables > 0, "encoding statistics still reported");
}

/// The same IEEE-57 query unlimited matches the seed verdict, and an
/// escalating conflict budget converges to it too.
#[test]
fn ieee57_unlimited_matches_seed_and_escalation_converges() {
    let input = ieee57().build();
    let property = Property::Observability;
    let spec = ResiliencySpec::total(0);
    let reference = measure(&input, property, spec);
    assert!(
        !reference.outcome.is_unknown(),
        "unlimited queries always decide"
    );
    let escalated = QueryLimits::none()
        .with_conflict_budget(1)
        .with_retry(RetryPolicy::escalating(32));
    let bounded = measure_limited(&input, property, spec, &escalated);
    assert!(!bounded.outcome.is_unknown(), "escalation must converge");
    assert_eq!(bounded.outcome, reference.outcome);
}
