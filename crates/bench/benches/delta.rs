//! Criterion bench: delta re-verification on the IEEE-30 workload.
//!
//! Four series answer the question "what does patching a warm session
//! buy you over reloading": `verify_cold` rebuilds the session (parse,
//! encode, analyzer build) for every query; `verify_warm` re-queries
//! the warm incremental solver; `patch` applies a security-profile
//! rotation to the warm session (validation, delta encode, re-key —
//! no solve); `patch_verify` applies the rotation and re-verifies on
//! the patched model. The target is for `patch_verify` to land within
//! a small factor of `verify_warm`, nowhere near `verify_cold` — that
//! ratio is what the CI perf gate enforces.

use criterion::{criterion_group, criterion_main, Criterion};
use scada_analyzer::obs::json_escape_into;
use scada_analyzer::service::{Engine, ServeOptions};
use scadasim::{generate, write_config, ScadaConfig, ScadaGenConfig};
use std::hint::black_box;

/// The IEEE-30 config text plus the 1-based wire ids of one pair to
/// rotate security profiles on. The pair is the first link's endpoints,
/// which carries IED traffic, so the rotation really dirties a secured
/// delivery cone instead of being a no-op.
fn ieee30() -> (String, usize, usize) {
    let system = powergrid::synthetic::ieee_sized(30, 0);
    let scada = generate(
        system,
        &ScadaGenConfig {
            measurement_density: 0.7,
            hierarchy_level: 1,
            secure_fraction: 0.8,
            seed: 0,
            ..Default::default()
        },
    );
    let link = &scada.topology.links()[0];
    let (a, b) = (link.a.one_based(), link.b.one_based());
    let config = write_config(&ScadaConfig {
        measurements: scada.measurements,
        topology: scada.topology,
        ied_measurements: scada.ied_measurements,
        resilience: (1, 1),
        corrupted: 1,
        link_failures: 0,
    });
    (config, a, b)
}

/// Sends one request and asserts the service accepted it.
fn ok(engine: &Engine, line: &str) -> String {
    let resp = engine.handle_line(line);
    assert!(
        resp.line.contains("\"ok\":true"),
        "request failed: {} -> {}",
        &line[..line.len().min(80)],
        resp.line
    );
    resp.line
}

/// Extracts the model hash from a load or patch reply.
fn hash_of(line: &str) -> String {
    line.split("\"model\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("model hash")
        .to_string()
}

fn bench_delta(c: &mut Criterion) {
    let (config, a, b) = ieee30();
    let mut load = String::from("{\"op\":\"load\",\"config\":\"");
    json_escape_into(&config, &mut load);
    load.push_str("\"}");

    let verify = |model: &str| {
        format!(
            "{{\"op\":\"verify\",\"model\":\"{model}\",\"property\":\"secured\",\
             \"spec\":{{\"k1\":2,\"k2\":1}}}}"
        )
    };
    let patch = |model: &str, toggle: bool| {
        let profile = if toggle { "aes 256" } else { "rsa 2048" };
        format!(
            "{{\"op\":\"patch\",\"model\":\"{model}\",\"patch\":{{\"set_profile\":\
             {{\"a\":{a},\"b\":{b},\"profiles\":[\"{profile}\"]}}}}}}"
        )
    };

    let mut group = c.benchmark_group("delta");
    group.sample_size(20);

    // Cold: every iteration evicts the session (dropping its cached
    // verdicts with it) and pays the full rebuild before the solve.
    let cold = Engine::new(ServeOptions::default());
    let cold_model = hash_of(&ok(&cold, &load));
    let evict = format!("{{\"op\":\"evict\",\"model\":\"{cold_model}\"}}");
    group.bench_function("verify_cold", |bench| {
        bench.iter(|| {
            ok(&cold, &evict);
            ok(&cold, &load);
            black_box(ok(&cold, &verify(&cold_model)))
        })
    });

    // Warm: the reference point the delta path is judged against. The
    // cache is disabled so the warm incremental solver really answers.
    let warm = Engine::new(ServeOptions {
        cache: 0,
        ..ServeOptions::default()
    });
    let warm_model = hash_of(&ok(&warm, &load));
    ok(&warm, &verify(&warm_model));
    group.bench_function("verify_warm", |bench| {
        bench.iter(|| black_box(ok(&warm, &verify(&warm_model))))
    });

    // Patch alone: rotate the pair's profile back and forth on one warm
    // session, chasing the lineage hash each reply hands back. After the
    // first full rotation both delivery cones are hash-consed, so
    // steady-state iterations measure the true delta-encode cost.
    let deltas = Engine::new(ServeOptions {
        cache: 0,
        ..ServeOptions::default()
    });
    let mut model = hash_of(&ok(&deltas, &load));
    ok(&deltas, &verify(&model));
    let mut toggle = false;
    group.bench_function("patch", |bench| {
        bench.iter(|| {
            let line = patch(&model, toggle);
            toggle = !toggle;
            model = hash_of(&ok(&deltas, &line));
        })
    });

    // Patch + re-verify: the headline series the perf gate compares
    // against `verify_warm`.
    group.bench_function("patch_verify", |bench| {
        bench.iter(|| {
            let line = patch(&model, toggle);
            toggle = !toggle;
            model = hash_of(&ok(&deltas, &line));
            black_box(ok(&deltas, &verify(&model)))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);
