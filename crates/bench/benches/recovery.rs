//! Criterion bench: warm-state recovery replay vs a cold build.
//!
//! Recovery's promise is that replaying the journal is *bounded* work:
//! rebuild each surviving session from its snapshot recipe (one load
//! plus its folded patch lineage) rather than re-reading an unbounded
//! op history. This bench pins the cost on the IEEE-30 workload:
//! `cold_build` runs the scripted session (load + a four-deep patch
//! lineage) against a fresh engine — the irreducible model-build work —
//! and `replay` opens the journal the same session left behind and
//! runs full recovery over a fresh engine. The CI gate asserts the
//! replay stays within 10× one cold build (journal scan, shadow fold,
//! and re-routing overhead included).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use scada_analyzer::obs::json_escape_into;
use scada_analyzer::service::{
    Durability, JournalConfig, JournaledEngine, ServeOptions, ShardedEngine,
};
use scadasim::{generate, write_config, ScadaConfig, ScadaGenConfig};
use std::hint::black_box;

/// The IEEE-30 config text plus the 1-based wire ids of one pair to
/// rotate security profiles on (same generator settings as the delta
/// bench, so the numbers are comparable across gates).
fn ieee30() -> (String, usize, usize) {
    let system = powergrid::synthetic::ieee_sized(30, 0);
    let scada = generate(
        system,
        &ScadaGenConfig {
            measurement_density: 0.7,
            hierarchy_level: 1,
            secure_fraction: 0.8,
            seed: 0,
            ..Default::default()
        },
    );
    let link = &scada.topology.links()[0];
    let (a, b) = (link.a.one_based(), link.b.one_based());
    let config = write_config(&ScadaConfig {
        measurements: scada.measurements,
        topology: scada.topology,
        ied_measurements: scada.ied_measurements,
        resilience: (1, 1),
        corrupted: 1,
        link_failures: 0,
    });
    (config, a, b)
}

fn hash_of(line: &str) -> String {
    line.split("\"model\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("model hash")
        .to_string()
}

/// Runs the scripted IEEE-30 session — one load, then a four-deep
/// security-profile patch lineage — through `handle`, asserting every
/// op is accepted.
fn run_session(handle: &dyn Fn(&str) -> String, load: &str, a: usize, b: usize) {
    let ok = |line: &str| {
        let reply = handle(line);
        assert!(
            reply.contains("\"ok\":true"),
            "session op failed: {} -> {}",
            &line[..line.len().min(80)],
            reply
        );
        reply
    };
    let mut model = hash_of(&ok(load));
    for (i, profile) in ["aes 256", "rsa 2048", "aes 256", "hmac 128"]
        .iter()
        .enumerate()
    {
        let line = format!(
            "{{\"op\":\"patch\",\"model\":\"{model}\",\"patch\":{{\"set_profile\":\
             {{\"a\":{a},\"b\":{b},\"profiles\":[\"{profile}\"]}}}}}}"
        );
        let reply = ok(&line);
        model = hash_of(&reply);
        let _ = i;
    }
    black_box(model);
}

fn bench_recovery(c: &mut Criterion) {
    let (config, a, b) = ieee30();
    let mut load = String::from("{\"op\":\"load\",\"config\":\"");
    json_escape_into(&config, &mut load);
    load.push_str("\"}");

    // Seed the journal once: the scripted session, journaled. Replay
    // iterations below recover from this directory (opening is
    // read-only plus tail truncation, so re-opening is idempotent).
    let dir = std::env::temp_dir().join(format!("scadad-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut jc = JournalConfig::new(&dir);
        jc.durability = Durability::Off; // journal content, not fsync, is under test
        let engine = Arc::new(ShardedEngine::new(ServeOptions::default(), 1));
        let journaled = JournaledEngine::open(engine, jc).expect("seed journal");
        run_session(&|line| journaled.handle_line(line).line, &load, a, b);
        use scada_analyzer::service::LineHandler as _;
        journaled.drain();
    }

    let mut group = c.benchmark_group("recovery");
    group.sample_size(10);

    // The irreducible baseline: the same session built cold against a
    // fresh engine (engine construction and teardown included — replay
    // iterations pay both too).
    group.bench_function("cold_build", |bench| {
        bench.iter(|| {
            let engine = ShardedEngine::new(ServeOptions::default(), 1);
            run_session(&|line| engine.handle_line(line).line, &load, a, b);
            engine.drain();
        })
    });

    // Recovery: open the journal, replay the snapshot recipe into a
    // fresh engine, verify the lineage hash.
    group.bench_function("replay", |bench| {
        bench.iter(|| {
            let jc = JournalConfig::new(&dir);
            let engine = Arc::new(ShardedEngine::new(ServeOptions::default(), 1));
            let journaled = JournaledEngine::open(engine, jc).expect("open journal");
            assert!(journaled.needs_recovery(), "seed journal lost its models");
            journaled.recover().expect("recovery replay");
            use scada_analyzer::service::LineHandler as _;
            journaled.drain();
        })
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
