//! Criterion bench: the §IV case-study queries (Scenario 1 and 2).

use criterion::{criterion_group, criterion_main, Criterion};
use scada_analyzer::casestudy::{five_bus_case_study, five_bus_fig4};
use scada_analyzer::{Analyzer, Property, ResiliencySpec};
use std::hint::black_box;

fn bench_case_study(c: &mut Criterion) {
    let fig3 = five_bus_case_study();
    let fig4 = five_bus_fig4();
    let mut group = c.benchmark_group("case_study");
    group.sample_size(20);

    group.bench_function("fig3_obs_1_1_unsat", |b| {
        b.iter(|| {
            let mut analyzer = Analyzer::new(black_box(&fig3));
            analyzer.verify(Property::Observability, ResiliencySpec::split(1, 1))
        })
    });
    group.bench_function("fig3_obs_2_1_sat", |b| {
        b.iter(|| {
            let mut analyzer = Analyzer::new(black_box(&fig3));
            analyzer.verify(Property::Observability, ResiliencySpec::split(2, 1))
        })
    });
    group.bench_function("fig3_secured_1_1_sat", |b| {
        b.iter(|| {
            let mut analyzer = Analyzer::new(black_box(&fig3));
            analyzer.verify(Property::SecuredObservability, ResiliencySpec::split(1, 1))
        })
    });
    group.bench_function("fig4_secured_0_1_sat", |b| {
        b.iter(|| {
            let mut analyzer = Analyzer::new(black_box(&fig4));
            analyzer.verify(Property::SecuredObservability, ResiliencySpec::split(0, 1))
        })
    });
    group.bench_function("fig3_baddata_1_1_r1", |b| {
        b.iter(|| {
            let mut analyzer = Analyzer::new(black_box(&fig3));
            analyzer.verify(
                Property::BadDataDetectability,
                ResiliencySpec::split(1, 1).with_corrupted(1),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_case_study);
criterion_main!(benches);
