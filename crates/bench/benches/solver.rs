//! Ablation benches for the engine layer: the CDCL solver on classic
//! hard instances and the three cardinality encodings (the design
//! choices DESIGN.md calls out).

use boolexpr::{assert_at_most, CardEncoding};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use satcore::{CnfSink, SolveResult, Solver, Var};
use std::hint::black_box;

/// Pigeonhole principle php(n+1, n): canonical hard unsat family.
fn pigeonhole(holes: usize) -> Solver {
    let pigeons = holes + 1;
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..pigeons * holes).map(|_| s.new_var()).collect();
    let v = |p: usize, h: usize| vars[p * holes + h];
    for p in 0..pigeons {
        let clause: Vec<_> = (0..holes).map(|h| v(p, h).positive()).collect();
        s.add_clause(&clause);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                s.add_clause(&[v(p1, h).negative(), v(p2, h).negative()]);
            }
        }
    }
    s
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("satcore");
    group.sample_size(10);
    for holes in [6usize, 7, 8] {
        group.bench_with_input(BenchmarkId::new("pigeonhole", holes), &holes, |b, &h| {
            b.iter(|| {
                let mut s = pigeonhole(black_box(h));
                assert_eq!(s.solve(), SolveResult::Unsat);
            })
        });
    }
    group.finish();
}

/// Encoding ablation: assert at-most-k over n inputs, force k+... bits,
/// and measure encode+solve (unsat) time per encoding.
fn bench_cardinality(c: &mut Criterion) {
    let mut group = c.benchmark_group("cardinality_ablation");
    group.sample_size(10);
    let n = 60;
    let k = 6;
    for enc in [CardEncoding::Sequential, CardEncoding::Totalizer] {
        group.bench_with_input(
            BenchmarkId::new(format!("{enc:?}"), format!("n{n}_k{k}")),
            &enc,
            |b, &enc| {
                b.iter(|| {
                    let mut s = Solver::new();
                    let xs: Vec<_> = (0..n).map(|_| s.new_var().positive()).collect();
                    assert_at_most(&mut s, &xs, k, enc);
                    // Force k+1 inputs true: must be unsat.
                    let assumptions: Vec<_> = xs.iter().take(k + 1).copied().collect();
                    assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Unsat);
                    // And k true is sat.
                    let assumptions: Vec<_> = xs.iter().take(k).copied().collect();
                    assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Sat);
                })
            },
        );
    }
    // Pairwise explodes combinatorially; bench it at a feasible size so
    // the ablation shows *why* it is not the default.
    group.bench_function("Pairwise/n20_k2", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let xs: Vec<_> = (0..20).map(|_| s.new_var().positive()).collect();
            assert_at_most(&mut s, &xs, 2, CardEncoding::Pairwise);
            let assumptions: Vec<_> = xs.iter().take(3).copied().collect();
            assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Unsat);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solver, bench_cardinality);
criterion_main!(benches);
