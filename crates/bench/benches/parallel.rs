//! Criterion bench for the parallel verification engine: serial vs
//! parallel wall-clock on IEEE-30/57 experiment fleets.
//!
//! Each fleet is the fig5-style sweep for one bus size — every seed ×
//! budget query around the resiliency boundary — run once through
//! `measure_fleet` with `jobs = 1` (the serial baseline) and once with
//! `jobs = 4`. The acceptance target is ≥2× speedup on 4 cores for the
//! 57-bus fleet; results land in the criterion report as
//! `fleet/{serial,jobs4}/{30,57}`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scada_analyzer::{Property, ResiliencySpec};
use scada_bench::{measure_fleet, resiliency_boundary, FleetQuery, Workload};
use std::hint::black_box;

/// The fig5-shaped fleet for one bus size: 4 seeds × {unsat, sat}
/// boundary queries = up to 8 independent verifications.
fn fleet_for(buses: usize) -> Vec<FleetQuery> {
    let mut fleet = Vec::new();
    for seed in 0..4u64 {
        let workload = Workload {
            buses,
            density: 0.9,
            hierarchy: 1,
            secure_fraction: 0.9,
            seed,
        };
        let input = workload.build();
        let Some((k_unsat, k_sat)) = resiliency_boundary(&input, Property::Observability, 8) else {
            continue;
        };
        for k in [k_unsat, k_sat] {
            fleet.push(FleetQuery {
                workload,
                property: Property::Observability,
                spec: ResiliencySpec::total(k),
            });
        }
    }
    fleet
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    for buses in [30usize, 57] {
        let fleet = fleet_for(buses);
        group.bench_with_input(BenchmarkId::new("serial", buses), &buses, |b, _| {
            b.iter(|| measure_fleet(black_box(&fleet), 1))
        });
        group.bench_with_input(BenchmarkId::new("jobs4", buses), &buses, |b, _| {
            b.iter(|| measure_fleet(black_box(&fleet), 4))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
