//! Criterion bench: service-layer latency on the IEEE-30 workload.
//!
//! Three series answer the question "what does keeping `scadad` running
//! buy you": `verify_cold` pays session construction (parse, encode,
//! analyzer build) plus the solve on every query; `verify_warm` reuses
//! the warm session's incremental solver state (the cache is disabled
//! so the solver really runs); `verify_cached` answers the repeated
//! query from the verdict cache without touching the solver at all.

use criterion::{criterion_group, criterion_main, Criterion};
use scada_analyzer::obs::json_escape_into;
use scada_analyzer::service::{Engine, ServeOptions};
use scadasim::{generate, write_config, ScadaConfig, ScadaGenConfig};
use std::hint::black_box;

fn ieee30_config() -> String {
    let system = powergrid::synthetic::ieee_sized(30, 0);
    let scada = generate(
        system,
        &ScadaGenConfig {
            measurement_density: 0.7,
            hierarchy_level: 1,
            secure_fraction: 0.8,
            seed: 0,
            ..Default::default()
        },
    );
    write_config(&ScadaConfig {
        measurements: scada.measurements,
        topology: scada.topology,
        ied_measurements: scada.ied_measurements,
        resilience: (1, 1),
        corrupted: 1,
        link_failures: 0,
    })
}

/// Sends one request and asserts the service accepted it.
fn ok(engine: &Engine, line: &str) -> String {
    let resp = engine.handle_line(line);
    assert!(
        resp.line.contains("\"ok\":true"),
        "request failed: {} -> {}",
        &line[..line.len().min(80)],
        resp.line
    );
    resp.line
}

fn bench_service(c: &mut Criterion) {
    let config = ieee30_config();
    let mut load = String::from("{\"op\":\"load\",\"config\":\"");
    json_escape_into(&config, &mut load);
    load.push_str("\"}");

    let mut group = c.benchmark_group("service");
    group.sample_size(20);

    // Every cold iteration evicts the session (which also invalidates
    // the cached verdicts for the model) and rebuilds it from scratch.
    let cold = Engine::new(ServeOptions::default());
    let loaded = ok(&cold, &load);
    let model = loaded
        .split("\"model\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("model hash")
        .to_string();
    let evict = format!("{{\"op\":\"evict\",\"model\":\"{model}\"}}");
    let verify_k1 = format!(
        "{{\"op\":\"verify\",\"model\":\"{model}\",\"property\":\"obs\",\
         \"spec\":{{\"k1\":1,\"k2\":1}}}}"
    );
    let verify_k2 = format!(
        "{{\"op\":\"verify\",\"model\":\"{model}\",\"property\":\"obs\",\
         \"spec\":{{\"k1\":2,\"k2\":1}}}}"
    );
    group.bench_function("verify_cold", |b| {
        b.iter(|| {
            ok(&cold, &evict);
            ok(&cold, &load);
            black_box(ok(&cold, &verify_k1))
        })
    });

    // Warm: the session persists; the cache is disabled so every
    // iteration reaches the warm incremental solver. The queried k
    // differs from the one that warmed the session.
    let warm = Engine::new(ServeOptions {
        cache: 0,
        ..ServeOptions::default()
    });
    ok(&warm, &load);
    ok(&warm, &verify_k1);
    group.bench_function("verify_warm", |b| {
        b.iter(|| black_box(ok(&warm, &verify_k2)))
    });

    // Cached: the repeated query answers from the verdict cache.
    let cached = Engine::new(ServeOptions::default());
    ok(&cached, &load);
    ok(&cached, &verify_k1);
    let primed = ok(&cached, &verify_k1);
    assert!(
        primed.contains("\"provenance\":\"cached\""),
        "cache not primed: {primed}"
    );
    group.bench_function("verify_cached", |b| {
        b.iter(|| black_box(ok(&cached, &verify_k1)))
    });

    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
