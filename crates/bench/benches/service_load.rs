//! Closed-loop load generator for the `scadad` event-loop front-end.
//!
//! Not a criterion bench: latency distributions need percentiles, which
//! the shim's mean/min/max records cannot express, so this target owns
//! its `main` (the manifest already sets `harness = false`) and writes
//! its own `BENCH_GATE_JSON` records with `p50_ns` / `p99_ns` /
//! `throughput_rps` fields alongside the shim-compatible ones.
//!
//! Each measured point starts an in-process sharded engine behind the
//! readiness event loop, primes one hot verdict into the caches (and,
//! when sharded, the cross-shard replica), then drives it closed-loop:
//! `conns` TCP connections each keep `depth` pipelined requests
//! outstanding, replacing every reply with a fresh request for a fixed
//! wall-clock window. Replies arrive in order per connection, so the
//! oldest outstanding send timestamp prices each reply.
//!
//! The sweep covers shards × connections × pipelining depth; two fixed
//! points, `service_load/gate_single` and `service_load/gate_sharded`,
//! feed the CI perf gate (`bench_gate --gate service`), which bounds
//! the sharded p99 against the single-shard baseline.
//!
//! Environment: `BENCH_SMOKE=1` shrinks the sweep and windows for CI;
//! `BENCH_GATE_JSON=path` appends the machine-readable records. A bare
//! CLI argument filters points by label substring; `--test` (from
//! `cargo test --benches`) runs one tiny point for validation.

#[cfg(not(unix))]
fn main() {
    // The event-loop transport is unix-only; there is nothing to
    // measure elsewhere.
    println!("service_load: skipped (event-loop transport is unix-only)");
}

#[cfg(unix)]
fn main() {
    imp::main()
}

#[cfg(unix)]
mod imp {
    use std::collections::VecDeque;
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use scada_analyzer::service::{ServeOptions, ShardedEngine};

    /// One measured configuration.
    #[derive(Clone, Copy)]
    struct Point {
        shards: usize,
        conns: usize,
        depth: usize,
    }

    /// Latency/throughput summary of one run.
    struct Summary {
        p50_ns: f64,
        p99_ns: f64,
        mean_ns: f64,
        min_ns: f64,
        max_ns: f64,
        samples: usize,
        throughput_rps: f64,
    }

    fn percentile(sorted: &[f64], q: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = (q * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Runs one closed-loop point against a fresh engine and returns the
    /// latency distribution over `window`.
    fn run_point(point: Point, window: Duration) -> Summary {
        let engine = Arc::new(ShardedEngine::new(ServeOptions::default(), point.shards));

        // Prime: one model, one hot verify. The second query turns the
        // cold verdict into a primary-cache hit (publishing to the replica
        // when sharded); the third answers from the replica.
        let load = engine.handle_line("{\"op\":\"load\",\"case_study\":true}");
        assert!(
            load.line.contains("\"ok\":true"),
            "prime load: {}",
            load.line
        );
        let model = load
            .line
            .split("\"model\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("model hash")
            .to_string();
        let verify = format!(
            "{{\"op\":\"verify\",\"model\":\"{model}\",\"property\":\"obs\",\
         \"spec\":{{\"k1\":1,\"k2\":1}}}}"
        );
        for _ in 0..3 {
            let r = engine.handle_line(&verify);
            assert!(r.line.contains("\"ok\":true"), "prime verify: {}", r.line);
        }

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                scada_analyzer::service::serve_event_loop(engine, listener, 0).expect("event loop")
            })
        };

        let stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        let mut clients = Vec::with_capacity(point.conns);
        for _ in 0..point.conns {
            let verify = verify.clone();
            let stop = Arc::clone(&stop);
            let depth = point.depth;
            clients.push(std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut outstanding: VecDeque<Instant> = VecDeque::with_capacity(depth);
                let mut latencies_ns: Vec<f64> = Vec::new();
                let mut line = String::new();
                for _ in 0..depth {
                    outstanding.push_back(Instant::now());
                    writeln!(writer, "{verify}").expect("send");
                }
                while let Some(sent) = outstanding.pop_front() {
                    line.clear();
                    reader.read_line(&mut line).expect("reply");
                    assert!(line.contains("\"ok\":true"), "reply: {line}");
                    latencies_ns.push(sent.elapsed().as_nanos() as f64);
                    if !stop.load(Ordering::Relaxed) {
                        outstanding.push_back(Instant::now());
                        writeln!(writer, "{verify}").expect("send");
                    }
                }
                latencies_ns
            }));
        }

        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        let mut latencies: Vec<f64> = Vec::new();
        for client in clients {
            latencies.extend(client.join().expect("client thread"));
        }
        let elapsed = started.elapsed();

        // Stop the service and wait out its drain.
        let ctrl = TcpStream::connect(addr).expect("ctrl connect");
        let mut w = ctrl.try_clone().expect("ctrl clone");
        writeln!(w, "{{\"op\":\"shutdown\"}}").expect("shutdown");
        let mut ack = String::new();
        BufReader::new(ctrl).read_line(&mut ack).expect("ack");
        server.join().expect("server thread");

        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let samples = latencies.len();
        let mean_ns = latencies.iter().sum::<f64>() / samples.max(1) as f64;
        Summary {
            p50_ns: percentile(&latencies, 0.50),
            p99_ns: percentile(&latencies, 0.99),
            mean_ns,
            min_ns: latencies.first().copied().unwrap_or(0.0),
            max_ns: latencies.last().copied().unwrap_or(0.0),
            samples,
            throughput_rps: samples as f64 / elapsed.as_secs_f64(),
        }
    }

    fn append_record(label: &str, s: &Summary) {
        let Some(path) = std::env::var_os("BENCH_GATE_JSON").filter(|v| !v.is_empty()) else {
            return;
        };
        let line = format!(
            "{{\"label\":\"{label}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\
         \"samples\":{},\"p50_ns\":{:.1},\"p99_ns\":{:.1},\"throughput_rps\":{:.1}}}\n",
            s.mean_ns, s.min_ns, s.max_ns, s.samples, s.p50_ns, s.p99_ns, s.throughput_rps
        );
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = written {
            eprintln!("warning: cannot write {path:?}: {e}");
        }
    }

    pub(super) fn main() {
        let mut filter: Option<String> = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        if test_mode {
            let s = run_point(
                Point {
                    shards: 2,
                    conns: 2,
                    depth: 2,
                },
                Duration::from_millis(50),
            );
            assert!(s.samples >= 4, "load generator produced no traffic");
            println!("test service_load ... ok");
            return;
        }

        let smoke = std::env::var_os("BENCH_SMOKE").is_some_and(|v| !v.is_empty());
        let window = if smoke {
            Duration::from_millis(150)
        } else {
            Duration::from_millis(1000)
        };

        // The sweep: shards × connections × pipelining depth.
        let shard_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4] };
        let conn_counts: &[usize] = if smoke { &[4] } else { &[1, 4, 16] };
        let depths: &[usize] = if smoke { &[4] } else { &[1, 8] };

        println!("service_load: closed-loop hot-verify replay over the event loop");
        println!("{:<28} {:>10} {:>10} {:>12}", "point", "p50", "p99", "rps");
        let run_labeled = |label: String, point: Point| {
            if filter.as_ref().is_some_and(|f| !label.contains(f.as_str())) {
                return;
            }
            let s = run_point(point, window);
            println!(
                "{label:<28} {:>8.1} µs {:>8.1} µs {:>12.0}",
                s.p50_ns / 1e3,
                s.p99_ns / 1e3,
                s.throughput_rps
            );
            append_record(&label, &s);
        };

        for &shards in shard_counts {
            for &conns in conn_counts {
                for &depth in depths {
                    run_labeled(
                        format!("service_load/s{shards}_c{conns}_d{depth}"),
                        Point {
                            shards,
                            conns,
                            depth,
                        },
                    );
                }
            }
        }

        // The gate pair: identical traffic (8 connections, depth 4), one
        // shard versus four, for `bench_gate --gate service`.
        run_labeled(
            "service_load/gate_single".to_string(),
            Point {
                shards: 1,
                conns: 8,
                depth: 4,
            },
        );
        run_labeled(
            "service_load/gate_sharded".to_string(),
            Point {
                shards: 4,
                conns: 8,
                depth: 4,
            },
        );
    }
}
