//! Criterion bench: security-index distribution times, IEEE 14 → 118.
//!
//! Two series per grid size answer "what does each implementation pay
//! to price every measurement": `sat/ieeeN` runs the incremental SAT
//! engine (one shared `UnaryCounter`, assumption-guided descent) over
//! the full measurement set; `mincut/ieeeN` runs the combinatorial
//! min-cut pricer from Hendrickx et al. on the same set. The absolute
//! numbers feed the EXPERIMENTS.md index-distribution figure; the two
//! series must of course agree on every index (the differential test
//! suite enforces that — here we only measure).

use criterion::{criterion_group, criterion_main, Criterion};
use powergrid::measurement::MeasurementSet;
use scada_analyzer::SecurityIndexAnalyzer;
use std::hint::black_box;

/// Full (flow + injection) measurement set over an IEEE-shaped grid.
fn grid(buses: usize) -> MeasurementSet {
    let system = if buses == 14 {
        powergrid::ieee::ieee14()
    } else {
        powergrid::synthetic::ieee_sized(buses, 0)
    };
    MeasurementSet::full(system)
}

fn bench_security_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("security_index");
    group.sample_size(10);

    for buses in [14, 30, 57, 118] {
        let ms = grid(buses);
        group.bench_function(format!("sat/ieee{buses}"), |bench| {
            bench.iter(|| {
                let mut engine = SecurityIndexAnalyzer::new(&ms);
                black_box(engine.distribution())
            })
        });
        group.bench_function(format!("mincut/ieee{buses}"), |bench| {
            bench.iter(|| black_box(powergrid::securityindex::security_indices(&ms)))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_security_index);
criterion_main!(benches);
