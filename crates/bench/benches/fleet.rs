//! Criterion bench: delta-deduplicated fleet audit vs cold-per-config.
//!
//! The fleet planner's promise is that a portfolio of near-duplicate
//! configs costs a handful of cold builds plus warm patched verifies,
//! not one cold session per config. This bench audits the checked-in
//! example fleet (two IEEE-14/30 similarity clusters, twelve valid
//! configs) both ways: `cold_per_config` forces every member onto the
//! cold route — the naive portfolio cost — and `delta_dedup` runs the
//! planner's chains (2 cold anchors, `set_profile` patch hops, cached
//! duplicates). The CI gate (`bench_gate --gate fleet`) asserts the
//! deduplicated audit stays ≤ 0.5× the cold-per-config cost.

use std::path::{Path, PathBuf};

use criterion::{criterion_group, criterion_main, Criterion};
use scada_analyzer::fleet::{plan_fleet, run_plan, scan_fleet, FleetPlan, PlanStep};
use scada_analyzer::service::{Engine, ServeOptions};
use std::hint::black_box;

fn fleet_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/fleet")
}

/// The baseline plan: every member cold-loaded into its own session,
/// as N independent single-config runs would.
fn all_cold(plan: &FleetPlan) -> FleetPlan {
    FleetPlan {
        scan: plan.scan.clone(),
        clusters: (0..plan.scan.members.len())
            .map(|member| vec![PlanStep::Cold { member }])
            .collect(),
    }
}

fn audit(plan: &FleetPlan, expected_errors: usize) {
    let engine = Engine::new(ServeOptions::default());
    let submit = |line: &str| engine.handle_line(line).line;
    let outcome = run_plan(plan, 1, &submit);
    assert_eq!(
        outcome.failed(),
        expected_errors,
        "audit rows changed shape"
    );
    black_box(outcome.rows.len());
}

fn bench_fleet(c: &mut Criterion) {
    let plan = plan_fleet(scan_fleet(&fleet_dir()).expect("example fleet readable"));
    assert!(
        plan.scan.members.len() >= 12,
        "example fleet shrank: {} members",
        plan.scan.members.len()
    );
    let (_, patches, dups) = plan.route_counts();
    assert!(
        patches >= 4 && dups >= 2,
        "plan stopped exercising the delta routes (patch {patches}, dup {dups})"
    );
    let errors = plan.scan.errors.len();
    let cold = all_cold(&plan);

    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    group.bench_function("cold_per_config", |bench| {
        bench.iter(|| audit(&cold, errors))
    });
    group.bench_function("delta_dedup", |bench| bench.iter(|| audit(&plan, errors)));
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
