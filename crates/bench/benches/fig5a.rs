//! Criterion bench for Fig 5(a): k-resilient observability verification
//! time vs problem size, sat and unsat series.
//!
//! 118-bus instances run in the `experiments` harness (single-shot);
//! here the criterion statistics cover 14/30/57.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scada_analyzer::{Property, ResiliencySpec};
use scada_bench::{measure, resiliency_boundary, Workload};
use std::hint::black_box;

fn bench_fig5a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_observability");
    group.sample_size(10);
    for buses in [14usize, 30, 57] {
        let input = Workload {
            buses,
            density: 0.9,
            hierarchy: 1,
            secure_fraction: 0.9,
            seed: 0,
        }
        .build();
        let Some((k_unsat, k_sat)) = resiliency_boundary(&input, Property::Observability, 8) else {
            continue;
        };
        group.bench_with_input(BenchmarkId::new("unsat", buses), &buses, |b, _| {
            b.iter(|| {
                measure(
                    black_box(&input),
                    Property::Observability,
                    ResiliencySpec::total(k_unsat),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sat", buses), &buses, |b, _| {
            b.iter(|| {
                measure(
                    black_box(&input),
                    Property::Observability,
                    ResiliencySpec::total(k_sat),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5a);
criterion_main!(benches);
