//! Criterion bench for Fig 6: verification time vs RTU hierarchy level,
//! 14-bus (a) and 57-bus (b). Expected shapes: sat times fall with
//! hierarchy (bigger threat space → earlier hits), unsat times mostly
//! rise (more paths to refute).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scada_analyzer::{Property, ResiliencySpec};
use scada_bench::{measure, resiliency_boundary, Workload};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    for buses in [14usize, 57] {
        let mut group = c.benchmark_group(format!("fig6_{buses}bus"));
        group.sample_size(10);
        for hierarchy in 1..=4usize {
            let input = Workload {
                buses,
                density: 0.9,
                hierarchy,
                secure_fraction: 0.9,
                seed: 0,
            }
            .build();
            let Some((k_unsat, k_sat)) = resiliency_boundary(&input, Property::Observability, 8)
            else {
                continue;
            };
            group.bench_with_input(BenchmarkId::new("unsat", hierarchy), &hierarchy, |b, _| {
                b.iter(|| {
                    measure(
                        black_box(&input),
                        Property::Observability,
                        ResiliencySpec::total(k_unsat),
                    )
                })
            });
            group.bench_with_input(BenchmarkId::new("sat", hierarchy), &hierarchy, |b, _| {
                b.iter(|| {
                    measure(
                        black_box(&input),
                        Property::Observability,
                        ResiliencySpec::total(k_sat),
                    )
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
