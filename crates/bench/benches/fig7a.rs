//! Criterion bench for Fig 7(a): the maximum-resiliency search on the
//! 14-bus system at several measurement densities. The quantity under
//! test is the incremental search itself (one encoding, assumption-based
//! budget queries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scada_analyzer::{Analyzer, BudgetAxis, Property};
use scada_bench::Workload;
use std::hint::black_box;

fn bench_fig7a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_max_resiliency");
    group.sample_size(10);
    for density_pct in [60u32, 80, 100] {
        let input = Workload {
            buses: 14,
            density: density_pct as f64 / 100.0,
            hierarchy: 1,
            secure_fraction: 1.0,
            seed: 0,
        }
        .build();
        group.bench_with_input(
            BenchmarkId::new("ied_axis", density_pct),
            &density_pct,
            |b, _| {
                b.iter(|| {
                    let mut analyzer = Analyzer::new(black_box(&input));
                    analyzer.max_resiliency(Property::Observability, BudgetAxis::IedsOnly, 1)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rtu_axis", density_pct),
            &density_pct,
            |b, _| {
                b.iter(|| {
                    let mut analyzer = Analyzer::new(black_box(&input));
                    analyzer.max_resiliency(Property::Observability, BudgetAxis::RtusOnly, 1)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig7a);
criterion_main!(benches);
