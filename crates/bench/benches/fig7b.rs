//! Criterion bench for Fig 7(b): complete threat-space enumeration on
//! the 14-bus system across hierarchy levels — higher hierarchy means
//! more minimal vectors, hence more blocking-clause iterations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scada_analyzer::{enumerate_threats, Property, ResiliencySpec};
use scada_bench::Workload;
use std::hint::black_box;

fn bench_fig7b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7b_threat_space");
    group.sample_size(10);
    for hierarchy in 1..=3usize {
        let input = Workload {
            buses: 14,
            density: 0.7,
            hierarchy,
            secure_fraction: 0.9,
            seed: 100,
        }
        .build();
        group.bench_with_input(
            BenchmarkId::new("enumerate_2_1", hierarchy),
            &hierarchy,
            |b, _| {
                b.iter(|| {
                    enumerate_threats(
                        black_box(&input),
                        Property::Observability,
                        ResiliencySpec::split(2, 1),
                        2000,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig7b);
criterion_main!(benches);
