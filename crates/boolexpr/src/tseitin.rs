//! Tseitin transformation from expressions to CNF.
//!
//! Every internal node is given a definition literal constrained to be
//! *equivalent* to the node (full biconditional, both polarities). The
//! paper writes its derived terms (`AssuredDelivery`, `D_Z`, `DE_X`, …)
//! as one-directional implications; encoding them as equivalences is what
//! makes the threat search sound — otherwise the solver could set a
//! derived term false spuriously and report a fake threat vector.

use std::collections::HashMap;

use satcore::{CnfSink, Lit};

use crate::expr::{ExprPool, Node, NodeRef};

/// Translates pool expressions into clauses on a [`CnfSink`].
///
/// The encoder caches the definition literal of every node, so shared
/// sub-expressions are defined once per [`Encoder`].
///
/// # Examples
///
/// ```
/// use boolexpr::{Encoder, ExprPool};
/// use satcore::{CnfSink, SolveResult, Solver};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var().positive();
/// let b = solver.new_var().positive();
///
/// let mut pool = ExprPool::new();
/// let na = pool.lit(a);
/// let nb = pool.lit(b);
/// let both = pool.and([na, nb]);
///
/// let mut enc = Encoder::new();
/// enc.assert(&pool, both, &mut solver);
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// assert_eq!(solver.value_of(a.var()), Some(true));
/// assert_eq!(solver.value_of(b.var()), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    lit_of: HashMap<NodeRef, Lit>,
    true_lit: Option<Lit>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// A literal constrained to be true (allocated lazily).
    pub fn true_lit<S: CnfSink>(&mut self, sink: &mut S) -> Lit {
        match self.true_lit {
            Some(l) => l,
            None => {
                let l = sink.new_var().positive();
                sink.add_clause(&[l]);
                self.true_lit = Some(l);
                l
            }
        }
    }

    /// Returns a literal equivalent to the expression, emitting defining
    /// clauses for any nodes not yet translated.
    pub fn literal<S: CnfSink>(&mut self, pool: &ExprPool, root: NodeRef, sink: &mut S) -> Lit {
        if let Some(&l) = self.lit_of.get(&root) {
            return l;
        }
        // Iterative post-order traversal (expressions can be deep).
        let mut stack: Vec<(NodeRef, bool)> = vec![(root, false)];
        while let Some((r, expanded)) = stack.pop() {
            if self.lit_of.contains_key(&r) {
                continue;
            }
            if !expanded {
                stack.push((r, true));
                match pool.node(r) {
                    Node::And(cs) | Node::Or(cs) => {
                        for &c in cs {
                            stack.push((c, false));
                        }
                    }
                    Node::Not(c) => stack.push((*c, false)),
                    _ => {}
                }
            } else {
                let lit = self.define(pool, r, sink);
                self.lit_of.insert(r, lit);
            }
        }
        self.lit_of[&root]
    }

    fn define<S: CnfSink>(&mut self, pool: &ExprPool, r: NodeRef, sink: &mut S) -> Lit {
        match pool.node(r) {
            Node::True => self.true_lit(sink),
            Node::False => !self.true_lit(sink),
            Node::Lit(l) => *l,
            Node::Not(c) => !self.lit_of[c],
            Node::And(cs) => {
                let d = sink.new_var().positive();
                let child_lits: Vec<Lit> = cs.iter().map(|c| self.lit_of[c]).collect();
                // d → ci for all i
                for &c in &child_lits {
                    sink.add_clause(&[!d, c]);
                }
                // (∧ ci) → d
                let mut clause: Vec<Lit> = child_lits.iter().map(|&c| !c).collect();
                clause.push(d);
                sink.add_clause(&clause);
                d
            }
            Node::Or(cs) => {
                let d = sink.new_var().positive();
                let child_lits: Vec<Lit> = cs.iter().map(|c| self.lit_of[c]).collect();
                // ci → d for all i
                for &c in &child_lits {
                    sink.add_clause(&[!c, d]);
                }
                // d → (∨ ci)
                let mut clause: Vec<Lit> = child_lits.clone();
                clause.push(!d);
                sink.add_clause(&clause);
                d
            }
        }
    }

    /// Asserts that the expression is true.
    ///
    /// The root connective is asserted structurally (no definition
    /// variable for the root): a conjunction asserts each conjunct, a
    /// disjunction becomes a single clause.
    pub fn assert<S: CnfSink>(&mut self, pool: &ExprPool, root: NodeRef, sink: &mut S) {
        match pool.node(root) {
            Node::True => {}
            Node::False => {
                // Assert the empty clause: unsatisfiable.
                sink.add_clause(&[]);
            }
            Node::And(cs) => {
                for &c in cs {
                    self.assert(pool, c, sink);
                }
            }
            Node::Or(cs) => {
                let clause: Vec<Lit> = cs.iter().map(|&c| self.literal(pool, c, sink)).collect();
                sink.add_clause(&clause);
            }
            _ => {
                let l = self.literal(pool, root, sink);
                sink.add_clause(&[l]);
            }
        }
    }

    /// Asserts `root` is false (sugar for asserting the negation).
    pub fn assert_not<S: CnfSink>(&mut self, pool: &mut ExprPool, root: NodeRef, sink: &mut S) {
        let neg = pool.not(root);
        self.assert(pool, neg, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satcore::{SolveResult, Solver};

    fn fresh(solver: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| solver.new_var().positive()).collect()
    }

    #[test]
    fn assert_conjunction_forces_children() {
        let mut s = Solver::new();
        let vs = fresh(&mut s, 3);
        let mut p = ExprPool::new();
        let ns: Vec<_> = vs.iter().map(|&l| p.lit(l)).collect();
        let conj = p.and(ns.clone());
        let mut e = Encoder::new();
        e.assert(&p, conj, &mut s);
        assert_eq!(s.solve(), SolveResult::Sat);
        for v in &vs {
            assert_eq!(s.value_of(v.var()), Some(true));
        }
    }

    #[test]
    fn assert_false_is_unsat() {
        let mut s = Solver::new();
        let p = ExprPool::new();
        let f = p.fls();
        let mut e = Encoder::new();
        e.assert(&p, f, &mut s);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn iff_is_biconditional() {
        let mut s = Solver::new();
        let vs = fresh(&mut s, 2);
        let mut p = ExprPool::new();
        let a = p.lit(vs[0]);
        let b = p.lit(vs[1]);
        let iff = p.iff(a, b);
        let mut e = Encoder::new();
        e.assert(&p, iff, &mut s);
        assert_eq!(s.solve_with_assumptions(&[vs[0]]), SolveResult::Sat);
        assert_eq!(s.value_of(vs[1].var()), Some(true));
        assert_eq!(s.solve_with_assumptions(&[!vs[0]]), SolveResult::Sat);
        assert_eq!(s.value_of(vs[1].var()), Some(false));
        assert_eq!(
            s.solve_with_assumptions(&[vs[0], !vs[1]]),
            SolveResult::Unsat
        );
    }

    #[test]
    fn definition_literal_is_equivalence() {
        // d := a ∨ b; forcing ¬a, ¬b must force ¬d (the reverse direction
        // of the Tseitin definition).
        let mut s = Solver::new();
        let vs = fresh(&mut s, 2);
        let mut p = ExprPool::new();
        let a = p.lit(vs[0]);
        let b = p.lit(vs[1]);
        let or = p.or([a, b]);
        let mut e = Encoder::new();
        let d = e.literal(&p, or, &mut s);
        assert_eq!(
            s.solve_with_assumptions(&[!vs[0], !vs[1], d]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve_with_assumptions(&[vs[0], !d]), SolveResult::Unsat);
    }

    #[test]
    fn shared_subexpressions_reuse_definitions() {
        let mut s = Solver::new();
        let vs = fresh(&mut s, 2);
        let mut p = ExprPool::new();
        let a = p.lit(vs[0]);
        let b = p.lit(vs[1]);
        let ab = p.and([a, b]);
        let mut e = Encoder::new();
        let l1 = e.literal(&p, ab, &mut s);
        let l2 = e.literal(&p, ab, &mut s);
        assert_eq!(l1, l2);
    }

    #[test]
    fn assert_not_negates() {
        let mut s = Solver::new();
        let vs = fresh(&mut s, 2);
        let mut p = ExprPool::new();
        let a = p.lit(vs[0]);
        let b = p.lit(vs[1]);
        let or = p.or([a, b]);
        let mut e = Encoder::new();
        e.assert_not(&mut p, or, &mut s);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value_of(vs[0].var()), Some(false));
        assert_eq!(s.value_of(vs[1].var()), Some(false));
    }
}
