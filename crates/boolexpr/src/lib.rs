//! # boolexpr — formulas, Tseitin transformation, cardinality encodings
//!
//! This crate is the "SMT-lite" layer of the SCADA resiliency analyzer:
//! it turns the DSN'16 paper's logical model — arbitrary Boolean structure
//! plus cardinality sums — into CNF for the [`satcore`] CDCL solver.
//!
//! * [`ExprPool`] builds hash-consed Boolean expressions with light
//!   simplification,
//! * [`Encoder`] performs the Tseitin transformation, defining every
//!   derived term as a full biconditional,
//! * [`cardinality`] provides asserted bounds (pairwise, sequential
//!   counter) and the reified [`UnaryCounter`] (totalizer) used for
//!   failure budgets and measurement-count thresholds.
//!
//! # Examples
//!
//! Encode "at most one of a, b, c, and (a ∨ c)":
//!
//! ```
//! use boolexpr::{assert_at_most, CardEncoding, Encoder, ExprPool};
//! use satcore::{CnfSink, SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! let lits: Vec<_> = (0..3).map(|_| solver.new_var().positive()).collect();
//!
//! assert_at_most(&mut solver, &lits, 1, CardEncoding::Sequential);
//!
//! let mut pool = ExprPool::new();
//! let a = pool.lit(lits[0]);
//! let c = pool.lit(lits[2]);
//! let ac = pool.or([a, c]);
//! Encoder::new().assert(&pool, ac, &mut solver);
//!
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! let trues = lits
//!     .iter()
//!     .filter(|l| solver.value_of(l.var()) == Some(true))
//!     .count();
//! assert_eq!(trues, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cardinality;
mod expr;
mod tseitin;

pub use cardinality::{
    assert_at_least, assert_at_most, assert_at_most_one, assert_exactly, AmoEncoding, CardEncoding,
    UnaryCounter,
};
pub use expr::{ExprPool, Node, NodeRef};
pub use tseitin::Encoder;
