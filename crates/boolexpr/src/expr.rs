//! Hash-consed Boolean expressions.
//!
//! Expressions are built inside an [`ExprPool`], which deduplicates
//! structurally identical nodes and performs light simplification at
//! construction time (constant folding, flattening of nested
//! conjunctions/disjunctions, complement detection). The pool keeps the
//! SCADA model encodings compact: the same sub-formula — e.g. "RTU 9 and
//! router 14 are up" — appears in many delivery paths but is encoded only
//! once.

use std::collections::HashMap;

use satcore::Lit;

/// A reference to an expression node inside an [`ExprPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef(u32);

impl NodeRef {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// An expression node. `And`/`Or` children are sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A solver literal.
    Lit(Lit),
    /// Conjunction of at least two children.
    And(Vec<NodeRef>),
    /// Disjunction of at least two children.
    Or(Vec<NodeRef>),
    /// Negation.
    Not(NodeRef),
}

/// A pool of hash-consed Boolean expressions.
///
/// # Examples
///
/// ```
/// use boolexpr::ExprPool;
/// use satcore::{Solver, CnfSink};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var().positive();
/// let b = solver.new_var().positive();
///
/// let mut pool = ExprPool::new();
/// let na = pool.lit(a);
/// let nb = pool.lit(b);
/// let conj = pool.and([na, nb]);
/// let same = pool.and([nb, na]);
/// assert_eq!(conj, same); // hash-consing is order-insensitive
/// ```
#[derive(Debug, Default)]
pub struct ExprPool {
    nodes: Vec<Node>,
    cache: HashMap<Node, NodeRef>,
}

impl ExprPool {
    /// Creates a pool containing the two constants.
    pub fn new() -> ExprPool {
        let mut p = ExprPool {
            nodes: Vec::new(),
            cache: HashMap::new(),
        };
        p.intern(Node::True);
        p.intern(Node::False);
        p
    }

    /// Number of distinct nodes in the pool.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool holds only the constants.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// The node behind a reference.
    pub fn node(&self, r: NodeRef) -> &Node {
        &self.nodes[r.index()]
    }

    fn intern(&mut self, n: Node) -> NodeRef {
        if let Some(&r) = self.cache.get(&n) {
            return r;
        }
        let r = NodeRef(self.nodes.len() as u32);
        self.nodes.push(n.clone());
        self.cache.insert(n, r);
        r
    }

    /// The constant true.
    pub fn tru(&self) -> NodeRef {
        NodeRef(0)
    }

    /// The constant false.
    pub fn fls(&self) -> NodeRef {
        NodeRef(1)
    }

    /// A constant of the given value.
    pub fn constant(&self, value: bool) -> NodeRef {
        if value {
            self.tru()
        } else {
            self.fls()
        }
    }

    /// An expression equal to a solver literal.
    pub fn lit(&mut self, l: Lit) -> NodeRef {
        self.intern(Node::Lit(l))
    }

    /// Negation, with double negation and constants folded.
    pub fn not(&mut self, r: NodeRef) -> NodeRef {
        match self.nodes[r.index()].clone() {
            Node::True => self.fls(),
            Node::False => self.tru(),
            Node::Lit(l) => self.intern(Node::Lit(!l)),
            Node::Not(inner) => inner,
            _ => self.intern(Node::Not(r)),
        }
    }

    /// N-ary conjunction. Flattens nested conjunctions, drops `true`,
    /// short-circuits on `false` and on complementary children.
    pub fn and<I: IntoIterator<Item = NodeRef>>(&mut self, children: I) -> NodeRef {
        let mut flat: Vec<NodeRef> = Vec::new();
        for c in children {
            match &self.nodes[c.index()] {
                Node::True => {}
                Node::False => return self.fls(),
                Node::And(cs) => flat.extend(cs.iter().copied()),
                _ => flat.push(c),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        // x ∧ ¬x → false
        for &c in &flat {
            let neg = self.not(c);
            if flat.binary_search(&neg).is_ok() {
                return self.fls();
            }
        }
        match flat.len() {
            0 => self.tru(),
            1 => flat[0],
            _ => self.intern(Node::And(flat)),
        }
    }

    /// N-ary disjunction, the dual of [`ExprPool::and`].
    pub fn or<I: IntoIterator<Item = NodeRef>>(&mut self, children: I) -> NodeRef {
        let mut flat: Vec<NodeRef> = Vec::new();
        for c in children {
            match &self.nodes[c.index()] {
                Node::False => {}
                Node::True => return self.tru(),
                Node::Or(cs) => flat.extend(cs.iter().copied()),
                _ => flat.push(c),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        for &c in &flat {
            let neg = self.not(c);
            if flat.binary_search(&neg).is_ok() {
                return self.tru();
            }
        }
        match flat.len() {
            0 => self.fls(),
            1 => flat[0],
            _ => self.intern(Node::Or(flat)),
        }
    }

    /// Implication `a → b`.
    pub fn implies(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        let na = self.not(a);
        self.or([na, b])
    }

    /// Biconditional `a ↔ b`.
    pub fn iff(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        let na = self.not(a);
        let nb = self.not(b);
        let l = self.or([na, b]);
        let r = self.or([a, nb]);
        self.and([l, r])
    }

    /// Exclusive or `a ⊕ b`.
    pub fn xor(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        let eq = self.iff(a, b);
        self.not(eq)
    }

    /// If-then-else `c ? t : e`.
    pub fn ite(&mut self, c: NodeRef, t: NodeRef, e: NodeRef) -> NodeRef {
        let nc = self.not(c);
        let l = self.or([nc, t]);
        let r = self.or([c, e]);
        self.and([l, r])
    }

    /// Evaluates an expression under an assignment of solver literals.
    ///
    /// `value(lit)` must return the truth of the literal.
    pub fn eval<F: Fn(Lit) -> bool + Copy>(&self, r: NodeRef, value: F) -> bool {
        match &self.nodes[r.index()] {
            Node::True => true,
            Node::False => false,
            Node::Lit(l) => value(*l),
            Node::And(cs) => cs.iter().all(|&c| self.eval(c, value)),
            Node::Or(cs) => cs.iter().any(|&c| self.eval(c, value)),
            Node::Not(c) => !self.eval(*c, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satcore::Var;

    fn l(i: usize) -> Lit {
        Var::from_index(i).positive()
    }

    #[test]
    fn constants() {
        let p = ExprPool::new();
        assert_ne!(p.tru(), p.fls());
        assert_eq!(p.constant(true), p.tru());
        assert_eq!(p.constant(false), p.fls());
    }

    #[test]
    fn not_folds() {
        let mut p = ExprPool::new();
        let t = p.tru();
        assert_eq!(p.not(t), p.fls());
        let a = p.lit(l(0));
        let na = p.not(a);
        assert_eq!(p.not(na), a);
        // Literal negation stays a literal node.
        assert!(matches!(p.node(na), Node::Lit(x) if x.is_negative()));
    }

    #[test]
    fn and_simplifies() {
        let mut p = ExprPool::new();
        let a = p.lit(l(0));
        let b = p.lit(l(1));
        let t = p.tru();
        let f = p.fls();
        assert_eq!(p.and([a, t]), a);
        assert_eq!(p.and([a, f]), p.fls());
        assert_eq!(p.and([] as [NodeRef; 0]), p.tru());
        assert_eq!(p.and([a, b]), p.and([b, a, a]));
        let na = p.not(a);
        assert_eq!(p.and([a, na]), p.fls());
    }

    #[test]
    fn or_simplifies() {
        let mut p = ExprPool::new();
        let a = p.lit(l(0));
        let b = p.lit(l(1));
        let t = p.tru();
        let f = p.fls();
        assert_eq!(p.or([a, f]), a);
        assert_eq!(p.or([a, t]), p.tru());
        assert_eq!(p.or([] as [NodeRef; 0]), p.fls());
        assert_eq!(p.or([a, b]), p.or([b, a]));
        let na = p.not(a);
        assert_eq!(p.or([a, na]), p.tru());
    }

    #[test]
    fn flattening() {
        let mut p = ExprPool::new();
        let a = p.lit(l(0));
        let b = p.lit(l(1));
        let c = p.lit(l(2));
        let ab = p.and([a, b]);
        let abc1 = p.and([ab, c]);
        let abc2 = p.and([a, b, c]);
        assert_eq!(abc1, abc2);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut p = ExprPool::new();
        let a = p.lit(l(0));
        let b = p.lit(l(1));
        let f = p.iff(a, b);
        let x = p.xor(a, b);
        let imp = p.implies(a, b);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let value = |lit: Lit| {
                let base = if lit.var().index() == 0 { va } else { vb };
                if lit.is_negative() {
                    !base
                } else {
                    base
                }
            };
            assert_eq!(p.eval(f, value), va == vb);
            assert_eq!(p.eval(x, value), va != vb);
            assert_eq!(p.eval(imp, value), !va || vb);
        }
    }

    #[test]
    fn ite_semantics() {
        let mut p = ExprPool::new();
        let c = p.lit(l(0));
        let t = p.lit(l(1));
        let e = p.lit(l(2));
        let ite = p.ite(c, t, e);
        for bits in 0..8u8 {
            let value = |lit: Lit| {
                let base = (bits >> lit.var().index()) & 1 == 1;
                base != lit.is_negative()
            };
            let expected = if value(l(0)) {
                value(l(1))
            } else {
                value(l(2))
            };
            assert_eq!(p.eval(ite, value), expected);
        }
    }
}
