//! Cardinality constraints over Boolean literals.
//!
//! The DSN'16 model uses two kinds of arithmetic: failure budgets
//! (`N − Σ Nodeᵢ ≤ k`) and measurement-count thresholds
//! (`Σ DelUMsr_E ≥ n`). Both are cardinality constraints, encoded here
//! three ways:
//!
//! * **pairwise** — the naive binomial encoding, only sensible for tiny
//!   inputs or `k ∈ {0, 1, n−1}`, kept as a baseline for the ablation
//!   bench,
//! * **sequential counter** (Sinz 2005) — `O(n·k)` clauses, asserts an
//!   at-most-k in one direction,
//! * **totalizer** (Bailleux & Boufkhad 2003) — `O(n²)` clauses building a
//!   full unary counter whose output literals are *equivalent* to the
//!   threshold atoms `Σ ≥ j`; this reification is what lets thresholds
//!   appear inside disjunctions (the unobservability constraint) and be
//!   queried incrementally under assumptions (the maximum-resiliency
//!   search).

use satcore::{CnfSink, Lit};

/// Which clause-level encoding to use for an asserted bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CardEncoding {
    /// Binomial encoding: one clause per (k+1)-subset.
    Pairwise,
    /// Sinz's sequential counter.
    Sequential,
    /// Bailleux–Boufkhad totalizer (via [`UnaryCounter`]).
    #[default]
    Totalizer,
}

/// Asserts `Σ lits ≤ k`.
///
/// # Panics
///
/// Panics if the pairwise encoding is requested for an instance where it
/// would exceed one million clauses.
pub fn assert_at_most<S: CnfSink>(sink: &mut S, lits: &[Lit], k: usize, enc: CardEncoding) {
    if k >= lits.len() {
        return; // trivially true
    }
    if k == 0 {
        for &l in lits {
            sink.add_clause(&[!l]);
        }
        return;
    }
    match enc {
        CardEncoding::Pairwise => pairwise_at_most(sink, lits, k),
        CardEncoding::Sequential => sequential_at_most(sink, lits, k),
        CardEncoding::Totalizer => {
            let counter = UnaryCounter::build(sink, lits);
            counter.assert_at_most(sink, k);
        }
    }
}

/// Asserts `Σ lits ≥ k` (as at-most over the negations).
pub fn assert_at_least<S: CnfSink>(sink: &mut S, lits: &[Lit], k: usize, enc: CardEncoding) {
    if k == 0 {
        return;
    }
    if k > lits.len() {
        sink.add_clause(&[]); // unsatisfiable
        return;
    }
    if k == 1 {
        sink.add_clause(lits);
        return;
    }
    let negated: Vec<Lit> = lits.iter().map(|&l| !l).collect();
    assert_at_most(sink, &negated, lits.len() - k, enc);
}

/// Asserts `Σ lits = k`.
pub fn assert_exactly<S: CnfSink>(sink: &mut S, lits: &[Lit], k: usize, enc: CardEncoding) {
    assert_at_most(sink, lits, k, enc);
    assert_at_least(sink, lits, k, enc);
}

/// Clause budget above which the pairwise encoding refuses to run.
const MAX_PAIRWISE_CLAUSES: u128 = 1_000_000;

/// `C(n, r)` if it is at most `cap`, else `None`. Uses the smaller of
/// `r` and `n - r`, so the running prefix values `C(n, 1) … C(n, r)`
/// are nondecreasing and the early exit is exact; `checked_mul` catches
/// the step where the product itself would wrap `u128`.
fn binomial_capped(n: usize, r: usize, cap: u128) -> Option<u128> {
    let r = r.min(n - r);
    let mut value: u128 = 1;
    for i in 0..r {
        value = value.checked_mul((n - i) as u128)? / (i as u128 + 1);
        if value > cap {
            return None;
        }
    }
    Some(value)
}

fn pairwise_at_most<S: CnfSink>(sink: &mut S, lits: &[Lit], k: usize) {
    let n = lits.len();
    // The clause count C(n, k+1) must be bounded *while* it is computed:
    // for large (n, k) the full binomial product wraps u128 silently in
    // release builds, can land back under the budget, and the clause
    // loop below then effectively hangs.
    let combos = binomial_capped(n, k + 1, MAX_PAIRWISE_CLAUSES);
    assert!(
        combos.is_some(),
        "pairwise at-most-{k} over {n} literals needs more than \
         {MAX_PAIRWISE_CLAUSES} clauses; use another encoding"
    );
    // Emit one clause per (k+1)-subset: ¬l_{i1} ∨ … ∨ ¬l_{ik+1}.
    let mut idx: Vec<usize> = (0..=k).collect();
    loop {
        let clause: Vec<Lit> = idx.iter().map(|&i| !lits[i]).collect();
        sink.add_clause(&clause);
        // Next combination.
        let mut pos = k + 1;
        loop {
            if pos == 0 {
                return;
            }
            pos -= 1;
            if idx[pos] != pos + n - (k + 1) {
                break;
            }
            if pos == 0 {
                return;
            }
        }
        idx[pos] += 1;
        for j in (pos + 1)..=k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Sinz's sequential counter: registers `s[i][j]` meaning "at least `j+1`
/// of the first `i+1` literals are true".
#[allow(clippy::needless_range_loop)] // indices mirror the textbook subscripts
fn sequential_at_most<S: CnfSink>(sink: &mut S, lits: &[Lit], k: usize) {
    let n = lits.len();
    debug_assert!(k >= 1 && k < n);
    // s[i][j], i in 0..n-1 (no register row needed for the last literal),
    // j in 0..k.
    let rows = n - 1;
    let mut s: Vec<Vec<Lit>> = Vec::with_capacity(rows);
    for _ in 0..rows {
        s.push((0..k).map(|_| sink.new_var().positive()).collect());
    }
    // x_0 → s_{0,0}
    sink.add_clause(&[!lits[0], s[0][0]]);
    // ¬s_{0,j} for j ≥ 1
    for j in 1..k {
        sink.add_clause(&[!s[0][j]]);
    }
    for i in 1..rows {
        // x_i → s_{i,0}
        sink.add_clause(&[!lits[i], s[i][0]]);
        // s_{i-1,j} → s_{i,j}
        for j in 0..k {
            sink.add_clause(&[!s[i - 1][j], s[i][j]]);
        }
        // x_i ∧ s_{i-1,j-1} → s_{i,j}
        for j in 1..k {
            sink.add_clause(&[!lits[i], !s[i - 1][j - 1], s[i][j]]);
        }
        // x_i → ¬s_{i-1,k-1}  (would overflow to k+1)
        sink.add_clause(&[!lits[i], !s[i - 1][k - 1]]);
    }
    // Last literal: x_{n-1} → ¬s_{n-2,k-1}
    sink.add_clause(&[!lits[n - 1], !s[rows - 1][k - 1]]);
}

/// Which encoding [`assert_at_most_one`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AmoEncoding {
    /// One clause per pair: `O(n²)` clauses, zero auxiliary variables.
    Pairwise,
    /// Commander encoding (Klieber & Kwon): groups of three with a
    /// commander variable each, recursing over commanders — `O(n)`
    /// clauses and `O(n/2)` auxiliary variables.
    #[default]
    Commander,
}

/// Asserts `Σ lits ≤ 1` with an encoding specialized for the
/// at-most-one case (much lighter than the general counters).
pub fn assert_at_most_one<S: CnfSink>(sink: &mut S, lits: &[Lit], enc: AmoEncoding) {
    if lits.len() <= 1 {
        return;
    }
    match enc {
        AmoEncoding::Pairwise => {
            for i in 0..lits.len() {
                for j in (i + 1)..lits.len() {
                    sink.add_clause(&[!lits[i], !lits[j]]);
                }
            }
        }
        AmoEncoding::Commander => commander_amo(sink, lits),
    }
}

fn commander_amo<S: CnfSink>(sink: &mut S, lits: &[Lit]) {
    const GROUP: usize = 3;
    if lits.len() <= GROUP + 1 {
        // Small enough: pairwise is optimal.
        assert_at_most_one(sink, lits, AmoEncoding::Pairwise);
        return;
    }
    let mut commanders: Vec<Lit> = Vec::with_capacity(lits.len().div_ceil(GROUP));
    for group in lits.chunks(GROUP) {
        let c = sink.new_var().positive();
        // At most one within the group.
        assert_at_most_one(sink, group, AmoEncoding::Pairwise);
        // x → c for each member (so two groups cannot both fire).
        for &x in group {
            sink.add_clause(&[!x, c]);
        }
        // c → some member (keeps the commander exact, which lets this
        // encoding nest inside definitions).
        let mut clause: Vec<Lit> = group.to_vec();
        clause.push(!c);
        sink.add_clause(&clause);
        commanders.push(c);
    }
    commander_amo(sink, &commanders);
}

/// A full unary counter over a set of literals (totalizer encoding).
///
/// After construction, `outputs()[j]` is a literal **equivalent** to
/// `Σ lits ≥ j+1`: both implication directions are emitted, so threshold
/// atoms can be embedded in arbitrary formulas or assumed positively and
/// negatively.
///
/// # Examples
///
/// ```
/// use boolexpr::UnaryCounter;
/// use satcore::{CnfSink, SolveResult, Solver};
///
/// let mut s = Solver::new();
/// let xs: Vec<_> = (0..4).map(|_| s.new_var().positive()).collect();
/// let counter = UnaryCounter::build(&mut s, &xs);
///
/// // Assume "at least 3": at most one xs literal may then be false.
/// let geq3 = counter.geq_lit(3).unwrap();
/// assert_eq!(
///     s.solve_with_assumptions(&[geq3, !xs[0], !xs[1]]),
///     SolveResult::Unsat
/// );
/// ```
#[derive(Debug, Clone)]
pub struct UnaryCounter {
    outputs: Vec<Lit>,
}

impl UnaryCounter {
    /// Builds the counter, emitting totalizer clauses into the sink.
    pub fn build<S: CnfSink>(sink: &mut S, lits: &[Lit]) -> UnaryCounter {
        let outputs = Self::tree(sink, lits);
        UnaryCounter { outputs }
    }

    fn tree<S: CnfSink>(sink: &mut S, lits: &[Lit]) -> Vec<Lit> {
        match lits.len() {
            0 => Vec::new(),
            1 => vec![lits[0]],
            n => {
                let (left, right) = lits.split_at(n / 2);
                let a = Self::tree(sink, left);
                let b = Self::tree(sink, right);
                Self::merge(sink, &a, &b)
            }
        }
    }

    /// Merges two sorted unary vectors. `a[i]` ⟺ left sum ≥ i+1, same for
    /// `b`; produces `r` with the same property for the union.
    fn merge<S: CnfSink>(sink: &mut S, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let p = a.len();
        let q = b.len();
        let r: Vec<Lit> = (0..p + q).map(|_| sink.new_var().positive()).collect();
        for i in 0..=p {
            for j in 0..=q {
                // Lower bound: a ≥ i ∧ b ≥ j → r ≥ i+j.
                if i + j >= 1 {
                    let mut clause = Vec::with_capacity(3);
                    if i >= 1 {
                        clause.push(!a[i - 1]);
                    }
                    if j >= 1 {
                        clause.push(!b[j - 1]);
                    }
                    clause.push(r[i + j - 1]);
                    sink.add_clause(&clause);
                }
                // Upper bound: a < i+1 ∧ b < j+1 → r < i+j+1.
                if i + j < p + q {
                    let mut clause = Vec::with_capacity(3);
                    if i < p {
                        clause.push(a[i]);
                    }
                    if j < q {
                        clause.push(b[j]);
                    }
                    clause.push(!r[i + j]);
                    sink.add_clause(&clause);
                }
            }
        }
        r
    }

    /// The sorted output literals: `outputs()[j]` ⟺ `Σ ≥ j+1`.
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// Number of input literals.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether the counter counts zero literals.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Literal equivalent to `Σ ≥ j`. Returns `None` for the trivial
    /// bounds (`j == 0` is always true; `j > n` is always false).
    pub fn geq_lit(&self, j: usize) -> Option<Lit> {
        if j == 0 || j > self.outputs.len() {
            None
        } else {
            Some(self.outputs[j - 1])
        }
    }

    /// Literal equivalent to `Σ ≤ j` (the negation of `Σ ≥ j+1`).
    pub fn leq_lit(&self, j: usize) -> Option<Lit> {
        self.geq_lit(j + 1).map(|l| !l)
    }

    /// Asserts `Σ ≤ k` as unit clauses on the outputs.
    pub fn assert_at_most<S: CnfSink>(&self, sink: &mut S, k: usize) {
        if let Some(l) = self.leq_lit(k) {
            sink.add_clause(&[l]);
        }
    }

    /// Asserts `Σ ≥ k`.
    pub fn assert_at_least<S: CnfSink>(&self, sink: &mut S, k: usize) {
        if k == 0 {
            return;
        }
        match self.geq_lit(k) {
            Some(l) => sink.add_clause(&[l]),
            None => sink.add_clause(&[]), // k > n: unsatisfiable
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satcore::{SolveResult, Solver};

    fn fresh(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var().positive()).collect()
    }

    /// Checks an asserted at-most-k against popcount over all assignments.
    fn check_at_most(n: usize, k: usize, enc: CardEncoding) {
        let mut s = Solver::new();
        let xs = fresh(&mut s, n);
        assert_at_most(&mut s, &xs, k, enc);
        for bits in 0..(1u32 << n) {
            let assumptions: Vec<Lit> = (0..n)
                .map(|i| if (bits >> i) & 1 == 1 { xs[i] } else { !xs[i] })
                .collect();
            let expected = bits.count_ones() as usize <= k;
            let got = s.solve_with_assumptions(&assumptions) == SolveResult::Sat;
            assert_eq!(got, expected, "n={n} k={k} bits={bits:b} enc={enc:?}");
        }
    }

    #[test]
    fn sequential_matches_popcount() {
        for n in 1..=6 {
            for k in 0..=n {
                check_at_most(n, k, CardEncoding::Sequential);
            }
        }
    }

    #[test]
    fn totalizer_matches_popcount() {
        for n in 1..=6 {
            for k in 0..=n {
                check_at_most(n, k, CardEncoding::Totalizer);
            }
        }
    }

    #[test]
    fn pairwise_matches_popcount() {
        for n in 1..=6 {
            for k in 0..=n {
                check_at_most(n, k, CardEncoding::Pairwise);
            }
        }
    }

    #[test]
    fn at_least_matches_popcount() {
        for enc in [
            CardEncoding::Pairwise,
            CardEncoding::Sequential,
            CardEncoding::Totalizer,
        ] {
            let n = 5;
            for k in 0..=n + 1 {
                let mut s = Solver::new();
                let xs = fresh(&mut s, n);
                assert_at_least(&mut s, &xs, k, enc);
                for bits in 0..(1u32 << n) {
                    let assumptions: Vec<Lit> = (0..n)
                        .map(|i| if (bits >> i) & 1 == 1 { xs[i] } else { !xs[i] })
                        .collect();
                    let expected = bits.count_ones() as usize >= k;
                    let got = s.solve_with_assumptions(&assumptions) == SolveResult::Sat;
                    assert_eq!(got, expected, "n={n} k={k} bits={bits:b} enc={enc:?}");
                }
            }
        }
    }

    #[test]
    fn exactly_matches_popcount() {
        let n = 5;
        for k in 0..=n {
            let mut s = Solver::new();
            let xs = fresh(&mut s, n);
            assert_exactly(&mut s, &xs, k, CardEncoding::Totalizer);
            for bits in 0..(1u32 << n) {
                let assumptions: Vec<Lit> = (0..n)
                    .map(|i| if (bits >> i) & 1 == 1 { xs[i] } else { !xs[i] })
                    .collect();
                let expected = bits.count_ones() as usize == k;
                let got = s.solve_with_assumptions(&assumptions) == SolveResult::Sat;
                assert_eq!(got, expected, "k={k} bits={bits:b}");
            }
        }
    }

    #[test]
    fn unary_counter_outputs_are_equivalences() {
        let n = 5;
        let mut s = Solver::new();
        let xs = fresh(&mut s, n);
        let counter = UnaryCounter::build(&mut s, &xs);
        for bits in 0..(1u32 << n) {
            let base: Vec<Lit> = (0..n)
                .map(|i| if (bits >> i) & 1 == 1 { xs[i] } else { !xs[i] })
                .collect();
            let pop = bits.count_ones() as usize;
            for j in 1..=n {
                let o = counter.geq_lit(j).unwrap();
                // o_j must be forced to (pop >= j) in both polarities.
                let mut with_pos = base.clone();
                with_pos.push(o);
                let sat_pos = s.solve_with_assumptions(&with_pos) == SolveResult::Sat;
                assert_eq!(sat_pos, pop >= j, "geq {j} pop {pop} (positive)");
                let mut with_neg = base.clone();
                with_neg.push(!o);
                let sat_neg = s.solve_with_assumptions(&with_neg) == SolveResult::Sat;
                assert_eq!(sat_neg, pop < j, "geq {j} pop {pop} (negative)");
            }
        }
    }

    #[test]
    fn unary_counter_trivial_bounds() {
        let mut s = Solver::new();
        let xs = fresh(&mut s, 3);
        let counter = UnaryCounter::build(&mut s, &xs);
        assert!(counter.geq_lit(0).is_none());
        assert!(counter.geq_lit(4).is_none());
        assert!(counter.leq_lit(3).is_none());
        assert_eq!(counter.len(), 3);
        assert!(!counter.is_empty());
    }

    #[test]
    fn empty_counter() {
        let mut s = Solver::new();
        let counter = UnaryCounter::build(&mut s, &[]);
        assert!(counter.is_empty());
        counter.assert_at_most(&mut s, 0); // no-op
        assert_eq!(s.solve(), SolveResult::Sat);
        counter.assert_at_least(&mut s, 1); // unsatisfiable
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn amo_encodings_match_popcount() {
        for enc in [AmoEncoding::Pairwise, AmoEncoding::Commander] {
            for n in 1..=9 {
                let mut s = Solver::new();
                let xs = fresh(&mut s, n);
                assert_at_most_one(&mut s, &xs, enc);
                for bits in 0..(1u32 << n) {
                    let assumptions: Vec<Lit> = (0..n)
                        .map(|i| if (bits >> i) & 1 == 1 { xs[i] } else { !xs[i] })
                        .collect();
                    let expected = bits.count_ones() <= 1;
                    let got = s.solve_with_assumptions(&assumptions) == SolveResult::Sat;
                    assert_eq!(got, expected, "enc={enc:?} n={n} bits={bits:b}");
                }
            }
        }
    }

    #[test]
    fn commander_uses_fewer_clauses_at_scale() {
        use satcore::Cnf;
        let n = 60;
        let mut pairwise = Cnf::new();
        let xs: Vec<Lit> = (0..n).map(|_| pairwise.new_var().positive()).collect();
        assert_at_most_one(&mut pairwise, &xs, AmoEncoding::Pairwise);
        let mut commander = Cnf::new();
        let xs: Vec<Lit> = (0..n).map(|_| commander.new_var().positive()).collect();
        assert_at_most_one(&mut commander, &xs, AmoEncoding::Commander);
        assert!(
            commander.clauses.len() < pairwise.clauses.len() / 4,
            "commander {} vs pairwise {}",
            commander.clauses.len(),
            pairwise.clauses.len()
        );
    }

    /// C(140, 70) ≈ 2¹³⁶ overflows even u128. The old guard computed
    /// the full product first (wrapping in release, aborting with a
    /// bare overflow panic in debug) — the fix must refuse with the
    /// clean "use another encoding" message instead, before emitting a
    /// single clause.
    #[test]
    #[should_panic(expected = "use another encoding")]
    fn pairwise_guard_survives_u128_overflow() {
        use satcore::Cnf;
        let mut cnf = Cnf::new();
        let xs: Vec<Lit> = (0..140).map(|_| cnf.new_var().positive()).collect();
        assert_at_most(&mut cnf, &xs, 69, CardEncoding::Pairwise);
    }

    /// A large-n, near-n k is fine — C(40, 39) is only 40 clauses — but
    /// a naive early-exit on the *ascending* prefix C(40, 1..=39) would
    /// bail at C(40, 20) ≈ 1.4 × 10¹¹. The symmetric computation must
    /// keep accepting it.
    #[test]
    fn pairwise_guard_keeps_symmetric_small_counts() {
        use satcore::Cnf;
        let mut cnf = Cnf::new();
        let xs: Vec<Lit> = (0..40).map(|_| cnf.new_var().positive()).collect();
        assert_at_most(&mut cnf, &xs, 38, CardEncoding::Pairwise);
        assert_eq!(cnf.clauses.len(), 40);
    }

    #[test]
    fn at_most_zero_forces_all_false() {
        let mut s = Solver::new();
        let xs = fresh(&mut s, 4);
        assert_at_most(&mut s, &xs, 0, CardEncoding::Sequential);
        assert_eq!(s.solve(), SolveResult::Sat);
        for x in &xs {
            assert_eq!(s.value_of(x.var()), Some(false));
        }
    }
}
