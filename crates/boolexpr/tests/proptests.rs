//! Property tests: the Tseitin encoding must be equisatisfiable with the
//! expression semantics, and cardinality encodings must agree with
//! popcount on random instances.

use proptest::prelude::*;

use boolexpr::{assert_at_most, CardEncoding, Encoder, ExprPool, NodeRef};
use satcore::{CnfSink, Lit, SolveResult, Solver, Var};

/// A recipe for building a random expression over `n` base literals.
#[derive(Debug, Clone)]
enum Recipe {
    Leaf(usize, bool),
    Not(Box<Recipe>),
    And(Vec<Recipe>),
    Or(Vec<Recipe>),
    Iff(Box<Recipe>, Box<Recipe>),
    Ite(Box<Recipe>, Box<Recipe>, Box<Recipe>),
}

fn arb_recipe(n_vars: usize) -> impl Strategy<Value = Recipe> {
    let leaf = (0..n_vars, any::<bool>()).prop_map(|(v, pol)| Recipe::Leaf(v, pol));
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|r| Recipe::Not(Box::new(r))),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Recipe::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Recipe::Or),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Iff(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Recipe::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn build(pool: &mut ExprPool, recipe: &Recipe, base: &[Lit]) -> NodeRef {
    match recipe {
        Recipe::Leaf(v, pol) => {
            let l = if *pol { base[*v] } else { !base[*v] };
            pool.lit(l)
        }
        Recipe::Not(r) => {
            let x = build(pool, r, base);
            pool.not(x)
        }
        Recipe::And(rs) => {
            let xs: Vec<_> = rs.iter().map(|r| build(pool, r, base)).collect();
            pool.and(xs)
        }
        Recipe::Or(rs) => {
            let xs: Vec<_> = rs.iter().map(|r| build(pool, r, base)).collect();
            pool.or(xs)
        }
        Recipe::Iff(a, b) => {
            let x = build(pool, a, base);
            let y = build(pool, b, base);
            pool.iff(x, y)
        }
        Recipe::Ite(c, t, e) => {
            let x = build(pool, c, base);
            let y = build(pool, t, base);
            let z = build(pool, e, base);
            pool.ite(x, y, z)
        }
    }
}

fn eval_recipe(recipe: &Recipe, assignment: &[bool]) -> bool {
    match recipe {
        Recipe::Leaf(v, pol) => assignment[*v] == *pol,
        Recipe::Not(r) => !eval_recipe(r, assignment),
        Recipe::And(rs) => rs.iter().all(|r| eval_recipe(r, assignment)),
        Recipe::Or(rs) => rs.iter().any(|r| eval_recipe(r, assignment)),
        Recipe::Iff(a, b) => eval_recipe(a, assignment) == eval_recipe(b, assignment),
        Recipe::Ite(c, t, e) => {
            if eval_recipe(c, assignment) {
                eval_recipe(t, assignment)
            } else {
                eval_recipe(e, assignment)
            }
        }
    }
}

const N_VARS: usize = 5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The Tseitin definition literal of a random expression is forced to
    /// the expression's truth value under every full assignment of the
    /// base variables.
    #[test]
    fn tseitin_literal_matches_semantics(recipe in arb_recipe(N_VARS)) {
        let mut solver = Solver::new();
        let base: Vec<Lit> = (0..N_VARS).map(|_| solver.new_var().positive()).collect();
        let mut pool = ExprPool::new();
        let root = build(&mut pool, &recipe, &base);
        let mut enc = Encoder::new();
        let d = enc.literal(&pool, root, &mut solver);

        for bits in 0..(1u32 << N_VARS) {
            let assignment: Vec<bool> = (0..N_VARS).map(|i| (bits >> i) & 1 == 1).collect();
            let mut assumptions: Vec<Lit> = (0..N_VARS)
                .map(|i| if assignment[i] { base[i] } else { !base[i] })
                .collect();
            let expected = eval_recipe(&recipe, &assignment);
            // Pool-level eval agrees with recipe-level eval.
            let pool_val = pool.eval(root, |l: Lit| {
                assignment[l.var().index()] != l.is_negative()
            });
            prop_assert_eq!(pool_val, expected);
            // The definition literal is forced accordingly.
            assumptions.push(if expected { d } else { !d });
            prop_assert_eq!(solver.solve_with_assumptions(&assumptions), SolveResult::Sat);
            let last = assumptions.len() - 1;
            assumptions[last] = if expected { !d } else { d };
            prop_assert_eq!(solver.solve_with_assumptions(&assumptions), SolveResult::Unsat);
        }
    }

    /// Asserting a random expression keeps exactly its satisfying
    /// assignments (projected to base variables).
    #[test]
    fn tseitin_assert_equisatisfiable(recipe in arb_recipe(N_VARS)) {
        let mut solver = Solver::new();
        let base: Vec<Lit> = (0..N_VARS).map(|_| solver.new_var().positive()).collect();
        let mut pool = ExprPool::new();
        let root = build(&mut pool, &recipe, &base);
        let mut enc = Encoder::new();
        enc.assert(&pool, root, &mut solver);

        for bits in 0..(1u32 << N_VARS) {
            let assignment: Vec<bool> = (0..N_VARS).map(|i| (bits >> i) & 1 == 1).collect();
            let assumptions: Vec<Lit> = (0..N_VARS)
                .map(|i| if assignment[i] { base[i] } else { !base[i] })
                .collect();
            let expected = eval_recipe(&recipe, &assignment);
            let got = solver.solve_with_assumptions(&assumptions) == SolveResult::Sat;
            prop_assert_eq!(got, expected, "assignment {:?}", assignment);
        }
    }

    /// All three cardinality encodings agree with popcount on random
    /// (n, k) and random forced sub-assignments.
    #[test]
    fn cardinality_encodings_agree(
        n in 1usize..8,
        k_raw in 0usize..8,
        bits in 0u32..256,
    ) {
        let k = k_raw % (n + 1);
        let bits = bits & ((1 << n) - 1);
        for enc in [CardEncoding::Pairwise, CardEncoding::Sequential, CardEncoding::Totalizer] {
            let mut solver = Solver::new();
            let xs: Vec<Lit> = (0..n).map(|_| solver.new_var().positive()).collect();
            assert_at_most(&mut solver, &xs, k, enc);
            let assumptions: Vec<Lit> = (0..n)
                .map(|i| if (bits >> i) & 1 == 1 { xs[i] } else { !xs[i] })
                .collect();
            let expected = (bits.count_ones() as usize) <= k;
            let got = solver.solve_with_assumptions(&assumptions) == SolveResult::Sat;
            prop_assert_eq!(got, expected, "enc={:?} n={} k={} bits={:b}", enc, n, k, bits);
        }
    }
}

#[test]
fn pool_sharing_reduces_solver_size() {
    // Encoding the same sub-expression many times must not blow up the
    // variable count.
    let mut solver = Solver::new();
    let base: Vec<Lit> = (0..4).map(|_| solver.new_var().positive()).collect();
    let mut pool = ExprPool::new();
    let a = pool.lit(base[0]);
    let b = pool.lit(base[1]);
    let shared = pool.and([a, b]);
    let mut enc = Encoder::new();
    let before = solver.num_vars();
    for _ in 0..100 {
        enc.literal(&pool, shared, &mut solver);
    }
    let after = solver.num_vars();
    assert_eq!(after - before, 1, "shared node must be defined once");
    let _ = Var::from_index(0); // silence unused import in some cfgs
}
